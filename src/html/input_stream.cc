#include "html/input_stream.h"

#include <array>
#include <cassert>
#include <cstring>

#include "html/encoding.h"

namespace hv::html {
namespace {

using ByteTable = std::array<bool, 256>;

/// Bytes the pre-scan must look at: C0 controls (newlines, NUL, controls),
/// DEL, and everything non-ASCII.  Printable ASCII skips in one compare.
constexpr ByteTable make_attention_table() {
  ByteTable table{};
  for (unsigned i = 0; i < 256; ++i) {
    table[i] = i < 0x20 || i == 0x7F || i >= 0x80;
  }
  return table;
}
constexpr ByteTable kNeedsAttention = make_attention_table();

/// Stop bytes per text-run state.  NUL and CR always stop (NUL tokens and
/// newline normalization take the slow path); '<' stops everywhere a tag
/// can open; '&' stops where character references live; '-' stays on the
/// slow path in script data for escape handling.  When the document is not
/// well-formed UTF-8, every non-ASCII byte stops too, so runs only ever
/// cover bytes whose decode/re-encode round trip is the identity.
constexpr ByteTable make_stop_table(std::initializer_list<unsigned char> stops,
                                    bool stop_non_ascii,
                                    bool stop_upper = false) {
  ByteTable table{};
  table[0x00] = true;
  table[static_cast<unsigned char>('\r')] = true;
  for (const unsigned char b : stops) table[b] = true;
  if (stop_non_ascii) {
    for (unsigned i = 0x80; i < 256; ++i) table[i] = true;
  }
  if (stop_upper) {
    for (unsigned i = 'A'; i <= 'Z'; ++i) table[i] = true;
  }
  return table;
}

// Indexed [kind][wellformed ? 0 : 1].
constexpr std::array<std::array<ByteTable, 2>, 9> kStopTables = {{
    {make_stop_table({'<', '&'}, false), make_stop_table({'<', '&'}, true)},
    {make_stop_table({'<', '&'}, false), make_stop_table({'<', '&'}, true)},
    {make_stop_table({'<'}, false), make_stop_table({'<'}, true)},
    {make_stop_table({'<', '-'}, false), make_stop_table({'<', '-'}, true)},
    {make_stop_table({}, false), make_stop_table({}, true)},
    {make_stop_table({'"', '&'}, false), make_stop_table({'"', '&'}, true)},
    {make_stop_table({'\'', '&'}, false),
     make_stop_table({'\'', '&'}, true)},
    {make_stop_table({'\t', '\n', '\f', ' ', '/', '>'}, false, true),
     make_stop_table({'\t', '\n', '\f', ' ', '/', '>'}, true, true)},
    {make_stop_table({'\t', '\n', '\f', ' ', '/', '=', '>', '"', '\'', '<'},
                     false, true),
     make_stop_table({'\t', '\n', '\f', ' ', '/', '=', '>', '"', '\'', '<'},
                     true, true)},
}};

constexpr bool is_utf8_continuation(unsigned char byte) noexcept {
  return (byte & 0xC0u) == 0x80u;
}

/// True when any byte of the word needs per-byte attention in pre_scan
/// (byte < 0x20, byte == 0x7F, or byte >= 0x80).  Uses the SWAR
/// has-byte-less-than / has-zero-byte idioms; the high-bit mask makes any
/// false positives from cross-byte borrows impossible, because bytes with
/// the high bit set already flag via `high`.
constexpr bool word_needs_attention(std::uint64_t w) noexcept {
  constexpr std::uint64_t kOnes = 0x0101010101010101ull;
  constexpr std::uint64_t kHigh = 0x8080808080808080ull;
  const std::uint64_t high = w & kHigh;
  const std::uint64_t lt20 = (w - 0x20 * kOnes) & ~w;
  const std::uint64_t x7f = w ^ 0x7F * kOnes;
  const std::uint64_t eq7f = (x7f - kOnes) & ~x7f;
  return ((high | lt20 | eq7f) & kHigh) != 0;
}

}  // namespace

InputStream::InputStream(std::string_view bytes) : bytes_(bytes) {
  pre_scan();
}

void InputStream::pre_scan() {
  // One pass replaces the old eager materialization AND the pipeline's
  // separate is_valid_utf8 scan: it records preprocessing errors with full
  // line/column positions, the well-formedness verdict, and the code-point
  // count.  Columns are counted in code points from the last newline, like
  // the old per-character line_starts_ table did.
  std::size_t offset = 0;
  std::size_t char_index = 0;
  std::size_t line = 1;
  std::size_t line_start = 0;  // char index of the current line's start
  const std::size_t size = bytes_.size();
  while (offset < size) {
    // Word-at-a-time skip over printable ASCII (the overwhelmingly common
    // case in crawled markup): 8 bytes per iteration, 8 code points each.
    while (offset + 8 <= size) {
      std::uint64_t word;
      std::memcpy(&word, bytes_.data() + offset, 8);
      if (word_needs_attention(word)) break;
      offset += 8;
      char_index += 8;
    }
    if (offset >= size) break;
    const auto b = static_cast<unsigned char>(bytes_[offset]);
    if (!kNeedsAttention[b]) {
      ++offset;
      ++char_index;
      continue;
    }
    if (b == '\n') {
      ++offset;
      ++char_index;
      ++line;
      line_start = char_index;
      continue;
    }
    if (b == '\r') {
      offset += (offset + 1 < size && bytes_[offset + 1] == '\n') ? 2 : 1;
      ++char_index;
      ++line;
      line_start = char_index;
      continue;
    }
    const SourcePosition pos{offset, line, char_index - line_start + 1};
    if (b < 0x80) {
      // C0 control or DEL; whitespace and NUL are exempt (13.2.3.5).
      if (b != '\t' && b != '\f' && b != 0x00) {
        errors_.push_back(
            {ParseError::ControlCharacterInInputStream, pos, {}});
      }
      ++offset;
      ++char_index;
      continue;
    }
    const DecodedCodePoint decoded = decode_utf8(bytes_, offset);
    if (!decoded.valid) {
      // Invalid sequences decode to U+FFFD without a preprocessing error
      // (matching the old decoder), but mark the document ill-formed.
      wellformed_ = false;
    } else if (is_noncharacter(decoded.code_point)) {
      errors_.push_back({ParseError::NoncharacterInInputStream, pos, {}});
    } else if (is_control(decoded.code_point)) {
      // C1 controls (U+0080–U+009F); never whitespace or NUL.
      errors_.push_back({ParseError::ControlCharacterInInputStream, pos, {}});
    }
    offset += decoded.length == 0 ? 1 : decoded.length;
    ++char_index;
  }
  char_count_ = char_index;
}

InputStream::Decoded InputStream::decode_at(std::size_t offset) const {
  if (offset == cache_offset_) return cache_;
  Decoded out;
  const auto b = static_cast<unsigned char>(bytes_[offset]);
  if (b == '\r') {
    // Newline normalization: CRLF -> LF, CR -> LF.
    out.c = U'\n';
    out.length =
        (offset + 1 < bytes_.size() && bytes_[offset + 1] == '\n') ? 2 : 1;
  } else if (b < 0x80) {
    out.c = b;
    out.length = 1;
  } else {
    const DecodedCodePoint decoded = decode_utf8(bytes_, offset);
    out.c = decoded.code_point;
    out.length =
        decoded.length == 0 ? 1 : static_cast<std::uint32_t>(decoded.length);
  }
  cache_offset_ = offset;
  cache_ = out;
  return out;
}

char32_t InputStream::consume() {
  if (has_pending_) {
    has_pending_ = false;
    if (pending_char_ != kEof) {
      prev_last_pos_ = last_pos_;
      last_pos_ = pending_pos_;
    }
    return pending_char_;
  }
  consumed_anything_ = true;
  if (cursor_ >= bytes_.size()) {
    // EOF consumes leave positions untouched: last_position() keeps
    // pointing at the final real character, as the old stream did.
    last_char_ = kEof;
    return kEof;
  }
  const Decoded decoded = decode_at(cursor_);
  prev_last_pos_ = last_pos_;
  last_pos_ = {cursor_, line_, column_};
  cursor_ += decoded.length;
  if (decoded.c == U'\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  last_char_ = decoded.c;
  return decoded.c;
}

void InputStream::reconsume() {
  assert(!has_pending_ && "only one pushback depth is supported");
  if (!consumed_anything_) return;  // old stream: no-op at start of input
  has_pending_ = true;
  pending_char_ = last_char_;
  if (last_char_ == kEof) {
    // Reconsuming EOF keeps last_position() at the final real character.
    pending_pos_ = position();
    return;
  }
  pending_pos_ = last_pos_;
  last_pos_ = prev_last_pos_;
}

char32_t InputStream::peek(std::size_t ahead) const {
  std::size_t offset = cursor_;
  if (has_pending_) {
    if (ahead == 0) return pending_char_;
    if (pending_char_ == kEof) return kEof;
    --ahead;
  }
  for (;;) {
    if (offset >= bytes_.size()) return kEof;
    const Decoded decoded = decode_at(offset);
    if (ahead == 0) return decoded.c;
    --ahead;
    offset += decoded.length;
  }
}

std::string_view InputStream::scan_text_run(TextRunKind kind) {
  const ByteTable& stop =
      kStopTables[static_cast<std::size_t>(kind)][wellformed_ ? 0 : 1];
  const std::size_t start = cursor_;
  const std::size_t size = bytes_.size();
  std::size_t i = start;
  // Fused scan: find the run end while tracking the position of the run's
  // final character so last_position() stays exact.  Columns advance once
  // per code point (lead byte), not per byte.
  std::size_t line = line_;
  std::size_t column = column_;
  std::size_t last_line = line_;
  std::size_t last_column = column_;
  std::size_t last_lead = start;
  while (i < size) {
    const auto b = static_cast<unsigned char>(bytes_[i]);
    if (stop[b]) break;
    if (!is_utf8_continuation(b)) {
      last_lead = i;
      last_line = line;
      last_column = column;
      if (b == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    ++i;
  }
  if (i == start) return {};
  consumed_anything_ = true;
  line_ = line;
  column_ = column;
  cursor_ = i;
  prev_last_pos_ = last_pos_;
  last_pos_ = {last_lead, last_line, last_column};
  last_char_ = decode_at(last_lead).c;
  return bytes_.substr(start, i - start);
}

bool InputStream::lookahead_matches_insensitive(std::string_view text) const {
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char32_t c = peek(i);
    if (c == kEof) return false;
    if (to_ascii_lower(c) !=
        to_ascii_lower(static_cast<char32_t>(
            static_cast<unsigned char>(text[i])))) {
      return false;
    }
  }
  return true;
}

bool InputStream::lookahead_matches(std::string_view text) const {
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (peek(i) !=
        static_cast<char32_t>(static_cast<unsigned char>(text[i]))) {
      return false;
    }
  }
  return true;
}

void InputStream::advance(std::size_t count) {
  while (count > 0 && !at_eof()) {
    consume();
    --count;
  }
}

}  // namespace hv::html
