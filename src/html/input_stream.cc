#include "html/input_stream.h"

#include <algorithm>

#include "html/encoding.h"

namespace hv::html {

InputStream::InputStream(std::string_view bytes) {
  characters_.reserve(bytes.size());
  byte_offsets_.reserve(bytes.size() + 1);
  line_starts_.push_back(0);

  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const DecodedCodePoint decoded = decode_utf8(bytes, offset);
    char32_t c = decoded.code_point;
    const std::size_t start = offset;
    offset += decoded.length == 0 ? 1 : decoded.length;

    // Newline normalization: CRLF -> LF, CR -> LF.
    if (c == U'\r') {
      if (offset < bytes.size() && bytes[offset] == '\n') ++offset;
      c = U'\n';
    }

    const auto char_index = static_cast<std::uint32_t>(characters_.size());
    characters_.push_back(c);
    byte_offsets_.push_back(static_cast<std::uint32_t>(start));
    if (c == U'\n') line_starts_.push_back(char_index + 1);

    // Preprocessing parse errors (13.2.3.5).
    if (!decoded.valid || is_surrogate(c)) {
      if (is_surrogate(c)) {
        errors_.push_back({ParseError::SurrogateInInputStream,
                           position_at(char_index), {}});
        characters_.back() = kReplacementCharacter;
      }
    } else if (is_noncharacter(c)) {
      errors_.push_back({ParseError::NoncharacterInInputStream,
                         position_at(char_index), {}});
    } else if (is_control(c) && !is_ascii_whitespace(c) && c != 0x00) {
      errors_.push_back({ParseError::ControlCharacterInInputStream,
                         position_at(char_index), {}});
    }
  }
  byte_offsets_.push_back(static_cast<std::uint32_t>(bytes.size()));
}

char32_t InputStream::consume() {
  if (cursor_ >= characters_.size()) {
    cursor_ = characters_.size() + 1;  // make reconsume() of EOF a no-op pop
    return kEof;
  }
  return characters_[cursor_++];
}

void InputStream::reconsume() {
  if (cursor_ > 0) --cursor_;
  cursor_ = std::min(cursor_, characters_.size());
}

char32_t InputStream::peek(std::size_t ahead) const {
  const std::size_t index = cursor_ + ahead;
  return index < characters_.size() ? characters_[index] : kEof;
}

bool InputStream::lookahead_matches_insensitive(std::string_view text) const {
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char32_t c = peek(i);
    if (c == kEof) return false;
    if (to_ascii_lower(c) !=
        to_ascii_lower(static_cast<char32_t>(
            static_cast<unsigned char>(text[i])))) {
      return false;
    }
  }
  return true;
}

bool InputStream::lookahead_matches(std::string_view text) const {
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (peek(i) !=
        static_cast<char32_t>(static_cast<unsigned char>(text[i]))) {
      return false;
    }
  }
  return true;
}

void InputStream::advance(std::size_t count) {
  cursor_ = std::min(cursor_ + count, characters_.size());
}

SourcePosition InputStream::position() const {
  return position_at(std::min(cursor_, characters_.size()));
}

SourcePosition InputStream::last_position() const {
  return position_at(cursor_ > 0 ? std::min(cursor_, characters_.size()) - 1
                                 : 0);
}

SourcePosition InputStream::position_at(std::size_t index) const {
  SourcePosition pos;
  pos.offset = index < byte_offsets_.size() ? byte_offsets_[index]
                                            : byte_offsets_.back();
  // Binary search for the line containing `index`.
  const auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(),
                                   static_cast<std::uint32_t>(index));
  const std::size_t line_index =
      static_cast<std::size_t>(it - line_starts_.begin()) - 1;
  pos.line = line_index + 1;
  pos.column = index - line_starts_[line_index] + 1;
  return pos;
}

}  // namespace hv::html
