// Public facade over the full HTML parsing pipeline:
//   bytes -> decoder -> input preprocessor -> tokenizer -> tree builder.
//
// This is the "instrumented browser parser" the study's checker runs on:
// it yields the repaired DOM plus every spec-named parse error and every
// silent error-tolerance repair (observation) the parser performed.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "html/dom.h"
#include "html/errors.h"
#include "html/observations.h"

namespace hv::html {

struct ParseResult {
  std::unique_ptr<Document> document;
  std::vector<ParseErrorEvent> errors;  ///< tokenizer + tree-builder errors
  Observations observations;            ///< tolerated structural repairs

  /// True when the input was well-formed UTF-8, as determined by the input
  /// stream's decoding pass (no separate validation scan needed).
  bool input_utf8_valid = true;

  /// True when the document triggered no parse error and no repair.
  bool clean() const noexcept {
    return errors.empty() && observations.empty();
  }

  /// Number of errors with the given code.
  std::size_t count(ParseError code) const noexcept;
  bool has_error(ParseError code) const noexcept { return count(code) > 0; }

  std::size_t count(ObservationKind kind) const noexcept;
  bool has_observation(ObservationKind kind) const noexcept {
    return count(kind) > 0;
  }
};

struct ParseOptions {
  /// Spec scripting flag: when true, <noscript> content is opaque raw
  /// text (a scripting browser); when false (crawler semantics, the
  /// paper's framework) noscript children are parsed as markup.
  bool scripting_enabled = false;
};

/// Parses a complete UTF-8 HTML document.  Never throws on malformed
/// markup — that is the whole point: every tolerated problem is reported
/// in the result instead.
ParseResult parse(std::string_view html);
ParseResult parse(std::string_view html, const ParseOptions& options);

/// Convenience: parse then serialize, i.e. one round through the error
/// tolerance.  This is the "first parsing process" of a sanitizer and the
/// normalization step of the FB1/FB2 auto-fix.
std::string parse_and_serialize(std::string_view html);

/// Parses an HTML *fragment* as if inserted into a `context_tag` element
/// (spec "parsing HTML fragments", the innerHTML algorithm).  This is what
/// the paper's section 5.1 pre-study needs: dynamically loaded content
/// never goes through the document parser, yet still enjoys (and suffers)
/// the same error tolerance.  The fragment's nodes are children of the
/// returned document's root <html> element.
ParseResult parse_fragment(std::string_view html,
                           std::string_view context_tag = "body");

}  // namespace hv::html
