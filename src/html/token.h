// Tokens produced by the Tokenizer and consumed by the TreeBuilder
// (WHATWG HTML 13.2.5: DOCTYPE, start tag, end tag, comment, character,
// end-of-file).
//
// Deviation for speed: runs of ordinary text are emitted as a single
// kCharacters token carrying a UTF-8 string; U+0000 is always emitted as a
// lone kNullCharacter token because every insertion mode treats it
// specially.
#pragma once

#include <string>
#include <vector>

#include "html/dom.h"
#include "html/errors.h"

namespace hv::html {

struct Token {
  enum class Type : std::uint8_t {
    kDoctype,
    kStartTag,
    kEndTag,
    kComment,
    kCharacters,     // batch of non-NUL text, UTF-8 in `data`
    kNullCharacter,  // a single U+0000 from the input stream
    kEof,
  };

  Type type = Type::kEof;

  // Tag tokens.
  std::string name;                  // lowercased tag name
  std::vector<Attribute> attributes;
  bool self_closing = false;
  /// Attribute names dropped by the duplicate-attribute rule, in source
  /// order.  Kept so the study's DM3 rule can report what was ignored.
  std::vector<std::string> dropped_duplicate_attributes;

  // Comment and character tokens use `data`; DOCTYPE uses name + ids.
  std::string data;
  std::string public_identifier;
  std::string system_identifier;
  bool has_public_identifier = false;
  bool has_system_identifier = false;
  bool force_quirks = false;

  /// Position of the token's first character in the source document.
  SourcePosition position;

  bool is_start_tag(std::string_view tag) const noexcept {
    return type == Type::kStartTag && name == tag;
  }
  bool is_end_tag(std::string_view tag) const noexcept {
    return type == Type::kEndTag && name == tag;
  }

  /// Value of attribute `attr_name` or nullopt (tag tokens only).
  std::optional<std::string_view> attribute(
      std::string_view attr_name) const noexcept {
    for (const Attribute& attr : attributes) {
      if (attr.name == attr_name) return std::string_view{attr.value};
    }
    return std::nullopt;
  }
};

/// Receiver of the token stream (implemented by the TreeBuilder and by
/// test drivers).
class TokenSink {
 public:
  virtual ~TokenSink() = default;
  /// Processes one token.  The sink may keep the token's strings only by
  /// copying/moving them.
  virtual void process_token(Token&& token) = 0;
};

}  // namespace hv::html
