#include "html/errors.h"

#include <array>

namespace hv::html {
namespace {

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(ParseError::kCount)>
    kNames = {
        "abrupt-closing-of-empty-comment",
        "abrupt-doctype-public-identifier",
        "abrupt-doctype-system-identifier",
        "absence-of-digits-in-numeric-character-reference",
        "cdata-in-html-content",
        "character-reference-outside-unicode-range",
        "control-character-in-input-stream",
        "control-character-reference",
        "duplicate-attribute",
        "end-tag-with-attributes",
        "end-tag-with-trailing-solidus",
        "eof-before-tag-name",
        "eof-in-cdata",
        "eof-in-comment",
        "eof-in-doctype",
        "eof-in-script-html-comment-like-text",
        "eof-in-tag",
        "incorrectly-closed-comment",
        "incorrectly-opened-comment",
        "invalid-character-sequence-after-doctype-name",
        "invalid-first-character-of-tag-name",
        "missing-attribute-value",
        "missing-doctype-name",
        "missing-doctype-public-identifier",
        "missing-doctype-system-identifier",
        "missing-end-tag-name",
        "missing-quote-before-doctype-public-identifier",
        "missing-quote-before-doctype-system-identifier",
        "missing-semicolon-after-character-reference",
        "missing-whitespace-after-doctype-public-keyword",
        "missing-whitespace-after-doctype-system-keyword",
        "missing-whitespace-before-doctype-name",
        "missing-whitespace-between-attributes",
        "missing-whitespace-between-doctype-public-and-system-identifiers",
        "nested-comment",
        "noncharacter-character-reference",
        "noncharacter-in-input-stream",
        "non-void-html-element-start-tag-with-trailing-solidus",
        "null-character-reference",
        "surrogate-character-reference",
        "surrogate-in-input-stream",
        "unexpected-character-after-doctype-system-identifier",
        "unexpected-character-in-attribute-name",
        "unexpected-character-in-unquoted-attribute-value",
        "unexpected-equals-sign-before-attribute-name",
        "unexpected-null-character",
        "unexpected-question-mark-instead-of-tag-name",
        "unexpected-solidus-in-tag",
        "unknown-named-character-reference",
        "unexpected-doctype",
        "unexpected-start-tag",
        "unexpected-end-tag",
        "misnested-tag",
        "stray-start-tag-in-head",
        "stray-content-after-head",
        "multiple-body-start-tags",
        "foster-parented-content",
        "nested-form-start-tag",
        "meta-http-equiv-in-body",
        "base-outside-head",
        "multiple-base-elements",
        "base-after-url-use",
        "unexpected-foreign-breakout",
        "stray-foreign-end-tag",
        "open-elements-at-eof",
        "tree-construction-generic",
};

}  // namespace

std::string_view to_string(ParseError error) noexcept {
  const auto index = static_cast<std::size_t>(error);
  if (index >= kNames.size()) return "unknown-parse-error";
  return kNames[index];
}

}  // namespace hv::html
