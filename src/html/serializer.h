// HTML fragment serialization (WHATWG HTML 13.3).
//
// Serializing a parsed DOM back to markup is the core of the paper's
// FB1/FB2 automatic repair ("serializing the entire document with the
// current HTML parser and deserializing it again", section 4.4): the
// output is syntactically valid even when the input was not.
#pragma once

#include <string>

#include "html/dom.h"

namespace hv::html {

struct SerializeOptions {
  bool pretty = false;  ///< newline+indent between elements (debugging aid)
};

/// Serializes `node`'s children (the "inner HTML" of the node).
std::string serialize_children(const Node& node,
                               const SerializeOptions& options = {});

/// Serializes the node itself (the "outer HTML"); for a Document this is
/// the whole page including the doctype.
std::string serialize(const Node& node, const SerializeOptions& options = {});

/// Escapes text for use in a text node (&, <, >, and U+00A0).
std::string escape_text(std::string_view text);

/// Escapes text for use in a double-quoted attribute value.
std::string escape_attribute(std::string_view text);

}  // namespace hv::html
