#include "html/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hv::html::simd {
namespace {

Backend clamp_to_compiled(Backend backend) noexcept {
  // "Stronger than compiled" can't run; anything else is selectable.  The
  // enum is ordered scalar < sse2 < neon only nominally — sse2 and neon
  // never coexist in one binary, so equality-or-scalar is the real rule.
  if (backend == kCompiledBackend || backend == Backend::kScalar) {
    return backend;
  }
  return kCompiledBackend;
}

Backend initial_backend() noexcept {
  const char* env = std::getenv("HV_SIMD");
  if (env == nullptr || *env == '\0') return kCompiledBackend;
  if (std::strcmp(env, "scalar") == 0) return Backend::kScalar;
  if (std::strcmp(env, "sse2") == 0) return clamp_to_compiled(Backend::kSse2);
  if (std::strcmp(env, "neon") == 0) return clamp_to_compiled(Backend::kNeon);
  return kCompiledBackend;  // unknown value: ignore, keep the compiled best
}

std::atomic<Backend>& backend_slot() noexcept {
  static std::atomic<Backend> slot{initial_backend()};
  return slot;
}

}  // namespace

Backend active_backend() noexcept {
  return backend_slot().load(std::memory_order_relaxed);
}

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kSse2:
      return "sse2";
    case Backend::kNeon:
      return "neon";
    case Backend::kScalar:
      break;
  }
  return "scalar";
}

const char* active_backend_name() noexcept {
  return backend_name(active_backend());
}

const char* compiled_backend_name() noexcept {
  return backend_name(kCompiledBackend);
}

Backend set_simd_backend(Backend backend) noexcept {
  const Backend effective = clamp_to_compiled(backend);
  backend_slot().store(effective, std::memory_order_relaxed);
  return effective;
}

}  // namespace hv::html::simd
