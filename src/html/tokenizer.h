// The HTML tokenizer — the state machine of WHATWG HTML 13.2.5.
//
// Implements every spec state (data, RCDATA, RAWTEXT, script data with the
// escaped/double-escaped comment-like sub-machine, PLAINTEXT, tag states,
// attribute states, comment states, DOCTYPE states, CDATA, and the
// character-reference sub-machine) and reports every spec-named parse error
// through an error collector.  The paper's FB1/FB2/DM3/DE3 rules are defined
// directly on these error states.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "html/entities.h"
#include "html/errors.h"
#include "html/input_stream.h"
#include "html/token.h"

namespace hv::html {

/// Tokenizer states.  Names follow the spec section titles.
enum class TokenizerState : std::uint8_t {
  kData,
  kRcdata,
  kRawtext,
  kScriptData,
  kPlaintext,
  kTagOpen,
  kEndTagOpen,
  kTagName,
  kRcdataLessThanSign,
  kRcdataEndTagOpen,
  kRcdataEndTagName,
  kRawtextLessThanSign,
  kRawtextEndTagOpen,
  kRawtextEndTagName,
  kScriptDataLessThanSign,
  kScriptDataEndTagOpen,
  kScriptDataEndTagName,
  kScriptDataEscapeStart,
  kScriptDataEscapeStartDash,
  kScriptDataEscaped,
  kScriptDataEscapedDash,
  kScriptDataEscapedDashDash,
  kScriptDataEscapedLessThanSign,
  kScriptDataEscapedEndTagOpen,
  kScriptDataEscapedEndTagName,
  kScriptDataDoubleEscapeStart,
  kScriptDataDoubleEscaped,
  kScriptDataDoubleEscapedDash,
  kScriptDataDoubleEscapedDashDash,
  kScriptDataDoubleEscapedLessThanSign,
  kScriptDataDoubleEscapeEnd,
  kBeforeAttributeName,
  kAttributeName,
  kAfterAttributeName,
  kBeforeAttributeValue,
  kAttributeValueDoubleQuoted,
  kAttributeValueSingleQuoted,
  kAttributeValueUnquoted,
  kAfterAttributeValueQuoted,
  kSelfClosingStartTag,
  kBogusComment,
  kMarkupDeclarationOpen,
  kCommentStart,
  kCommentStartDash,
  kComment,
  kCommentLessThanSign,
  kCommentLessThanSignBang,
  kCommentLessThanSignBangDash,
  kCommentLessThanSignBangDashDash,
  kCommentEndDash,
  kCommentEnd,
  kCommentEndBang,
  kDoctype,
  kBeforeDoctypeName,
  kDoctypeName,
  kAfterDoctypeName,
  kAfterDoctypePublicKeyword,
  kBeforeDoctypePublicIdentifier,
  kDoctypePublicIdentifierDoubleQuoted,
  kDoctypePublicIdentifierSingleQuoted,
  kAfterDoctypePublicIdentifier,
  kBetweenDoctypePublicAndSystemIdentifiers,
  kAfterDoctypeSystemKeyword,
  kBeforeDoctypeSystemIdentifier,
  kDoctypeSystemIdentifierDoubleQuoted,
  kDoctypeSystemIdentifierSingleQuoted,
  kAfterDoctypeSystemIdentifier,
  kBogusDoctype,
  kCdataSection,
  kCdataSectionBracket,
  kCdataSectionEnd,
  kCharacterReference,
  kNamedCharacterReference,
  kAmbiguousAmpersand,
  kNumericCharacterReference,
  kHexadecimalCharacterReferenceStart,
  kDecimalCharacterReferenceStart,
  kHexadecimalCharacterReference,
  kDecimalCharacterReference,
  kNumericCharacterReferenceEnd,
};

/// Globally enables/disables the byte-run fast path (input stream run
/// scanning).  Defaults to on; the golden-equivalence tests flip it off to
/// compare the optimized path against the per-character reference path.
void set_parser_fastpath(bool enabled) noexcept;
bool parser_fastpath_enabled() noexcept;

class Tokenizer {
 public:
  /// `errors` outlives the tokenizer and accumulates every parse error.
  Tokenizer(InputStream& input, TokenSink& sink,
            std::vector<ParseErrorEvent>& errors);

  /// Runs until the EOF token has been emitted.
  void run();

  /// Tokenizes exactly one step (used by the tree builder to interleave
  /// state switches). Returns false once EOF has been emitted.
  bool pump();

  /// Tree-builder feedback: switch state after a start tag (<title>,
  /// <textarea> -> RCDATA; <style>,... -> RAWTEXT; <script> -> script
  /// data; <plaintext> -> PLAINTEXT).
  void set_state(TokenizerState state) { state_ = state; }
  TokenizerState state() const noexcept { return state_; }

  /// The tree builder records the name of the last emitted start tag so an
  /// "appropriate end tag token" can be recognized in raw-text states.
  void set_last_start_tag(std::string_view name) {
    last_start_tag_name_.assign(name);
  }

  /// True while tokenizing inside CDATA-allowed foreign content; set by the
  /// tree builder (the "adjusted current node" check of 13.2.5.42).
  void set_cdata_allowed(bool allowed) { cdata_allowed_ = allowed; }

  bool eof_emitted() const noexcept { return eof_emitted_; }

 private:
  // --- emission helpers -------------------------------------------------
  void error(ParseError code);
  void error_at(ParseError code, SourcePosition position,
                std::string detail = {});
  void emit_current_tag();
  void emit_eof();
  void emit_comment();
  void emit_doctype();
  void flush_text();                 // flush pending character batch
  void emit_char(char32_t c);        // append to pending batch / NUL token
  void emit_null();
  void reset_current_tag(Token::Type type);
  void begin_start_tag();
  void begin_end_tag();
  void start_new_attribute();
  void finish_attribute_name();      // duplicate-attribute detection
  void commit_current_attr_value();  // moves value buffer onto the token
  void append_to_attr_name(char32_t c);
  void append_to_attr_value(char32_t c);
  bool current_end_tag_is_appropriate() const;

  // --- character reference helpers --------------------------------------
  bool char_ref_in_attribute() const;
  void flush_code_points_consumed_as_character_reference();

  // --- one state step ----------------------------------------------------
  void step();

  InputStream& input_;
  TokenSink& sink_;
  std::vector<ParseErrorEvent>& errors_;

  TokenizerState state_ = TokenizerState::kData;
  TokenizerState return_state_ = TokenizerState::kData;
  const bool fastpath_ = parser_fastpath_enabled();
  // Snapshot of the SIMD backend at construction: non-scalar backends take
  // the raw-byte-window entity matching path (lookahead_bytes + generated
  // trie) in kNamedCharacterReference.
  const bool simd_entities_ = simd::active_backend() != simd::Backend::kScalar;

  Token current_tag_;
  bool current_tag_is_start_ = false;
  std::string current_attr_name_;
  std::string current_attr_value_;
  bool has_current_attr_ = false;
  bool current_attr_dropped_ = false;
  SourcePosition current_attr_position_;

  Token current_comment_;
  Token current_doctype_;

  std::string pending_text_;         // batched character tokens (UTF-8)
  SourcePosition pending_text_position_;

  std::string last_start_tag_name_;
  std::u32string temporary_buffer_;
  char32_t char_ref_code_ = 0;
  SourcePosition token_start_;

  bool cdata_allowed_ = false;
  bool eof_emitted_ = false;

  /// Profiler leaf-attribution cache: the index of the `tok:*` scope
  /// group the thread-local leaf slot currently holds.  step() only
  /// touches TLS on group transitions, keeping per-character cost zero.
  std::uint8_t prof_group_ = 0xFF;
  /// Flight-recorder throttle: counts group transitions; every 64th one
  /// is recorded as a kTokenizerState event (see step()).
  std::uint32_t fdr_group_changes_ = 0;
};

}  // namespace hv::html
