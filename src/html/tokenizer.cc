#include "html/tokenizer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>

#include "html/encoding.h"
#include "obs/fdr.h"
#include "obs/prof.h"

namespace hv::html {

namespace {

std::atomic<bool> g_parser_fastpath{true};

}  // namespace

void set_parser_fastpath(bool enabled) noexcept {
  g_parser_fastpath.store(enabled, std::memory_order_relaxed);
}

bool parser_fastpath_enabled() noexcept {
  return g_parser_fastpath.load(std::memory_order_relaxed);
}

namespace {

#ifndef HV_OBS_DISABLED
/// Profiler attribution: the 80 spec states folded into 9 cost groups —
/// fine enough to aim the optimisation roadmap (SIMD text scanning, DFA
/// decode, entity perfect-hash) at the right sub-machine, coarse enough
/// that a sample resolves with one table lookup.
constexpr std::size_t kTokGroupCount = 9;

std::uint8_t tok_group_of(TokenizerState s) noexcept {
  using S = TokenizerState;
  const auto v = static_cast<std::uint8_t>(s);
  if (v <= static_cast<std::uint8_t>(S::kPlaintext)) return 0;  // text runs
  if (v <= static_cast<std::uint8_t>(S::kTagName)) return 1;    // tag open
  if (v <= static_cast<std::uint8_t>(S::kScriptDataEndTagName)) {
    return 2;  // rawtext/RCDATA/script end-tag scanning
  }
  if (v <= static_cast<std::uint8_t>(S::kScriptDataDoubleEscapeEnd)) {
    return 3;  // script-data escape sub-machine
  }
  if (v <= static_cast<std::uint8_t>(S::kAfterAttributeValueQuoted)) {
    return 4;  // attributes
  }
  if (v == static_cast<std::uint8_t>(S::kSelfClosingStartTag)) return 1;
  if (v <= static_cast<std::uint8_t>(S::kCommentEndBang)) return 5;
  if (v <= static_cast<std::uint8_t>(S::kBogusDoctype)) return 6;
  if (v <= static_cast<std::uint8_t>(S::kCdataSectionEnd)) return 7;
  return 8;  // character-reference sub-machine
}

const std::array<obs::prof::ScopeId, kTokGroupCount>& tok_group_scopes() {
  static const std::array<obs::prof::ScopeId, kTokGroupCount> ids = {
      obs::prof::intern_scope("tok:text_run"),
      obs::prof::intern_scope("tok:tag"),
      obs::prof::intern_scope("tok:end_tag_scan"),
      obs::prof::intern_scope("tok:script_escape"),
      obs::prof::intern_scope("tok:attr"),
      obs::prof::intern_scope("tok:comment"),
      obs::prof::intern_scope("tok:doctype"),
      obs::prof::intern_scope("tok:cdata"),
      obs::prof::intern_scope("tok:charref"),
  };
  return ids;
}

/// Flight-recorder mirror of the same nine groups, so a crash report's
/// event tail shows which tokenizer sub-machine the thread was in.
const std::array<obs::fdr::ScopeId, kTokGroupCount>& tok_group_fdr_scopes() {
  static const std::array<obs::fdr::ScopeId, kTokGroupCount> ids = {
      obs::fdr::intern("tok:text_run"), obs::fdr::intern("tok:tag"),
      obs::fdr::intern("tok:end_tag_scan"),
      obs::fdr::intern("tok:script_escape"), obs::fdr::intern("tok:attr"),
      obs::fdr::intern("tok:comment"),  obs::fdr::intern("tok:doctype"),
      obs::fdr::intern("tok:cdata"),    obs::fdr::intern("tok:charref"),
  };
  return ids;
}
#endif

constexpr char32_t kEofChar = InputStream::kEof;

bool is_ordinary_text(char32_t c, TokenizerState state) noexcept {
  if (c == kEofChar || c == U'\0' || c == U'<') return false;
  switch (state) {
    case TokenizerState::kData:
    case TokenizerState::kRcdata:
      return c != U'&';
    case TokenizerState::kRawtext:
      return true;
    case TokenizerState::kScriptData:
      return c != U'-';  // keep '-' on the slow path for escape handling
    case TokenizerState::kPlaintext:
      return true;
    default:
      return false;
  }
}

}  // namespace

Tokenizer::Tokenizer(InputStream& input, TokenSink& sink,
                     std::vector<ParseErrorEvent>& errors)
    : input_(input), sink_(sink), errors_(errors) {
  // Surface the preprocessor's errors ahead of tokenization.
  const auto& pre = input_.preprocessing_errors();
  errors_.insert(errors_.end(), pre.begin(), pre.end());
}

void Tokenizer::run() {
#ifndef HV_OBS_DISABLED
  // Save/restore the caller's profiler leaf; step() keeps it pointed at
  // the current state group while tokenizing.  The cache must be
  // invalidated here because a nested parse (or the tree builder's mode
  // scopes) may have moved the leaf since our last step.
  const obs::prof::LeafScope leaf_scope(obs::prof::kNoScope);
  prof_group_ = 0xFF;
#endif
  while (pump()) {
  }
}

bool Tokenizer::pump() {
  if (eof_emitted_) return false;
  step();
  return !eof_emitted_;
}

// --- emission helpers -----------------------------------------------------

void Tokenizer::error(ParseError code) {
  errors_.push_back({code, input_.last_position(), {}});
}

void Tokenizer::error_at(ParseError code, SourcePosition position,
                         std::string detail) {
  errors_.push_back({code, position, std::move(detail)});
}

void Tokenizer::flush_text() {
  if (pending_text_.empty()) return;
  Token token;
  token.type = Token::Type::kCharacters;
  token.data = std::move(pending_text_);
  token.position = pending_text_position_;
  pending_text_.clear();
  sink_.process_token(std::move(token));
}

void Tokenizer::emit_char(char32_t c) {
  if (pending_text_.empty()) pending_text_position_ = input_.last_position();
  append_utf8(c, pending_text_);
}

void Tokenizer::emit_null() {
  flush_text();
  Token token;
  token.type = Token::Type::kNullCharacter;
  token.position = input_.last_position();
  sink_.process_token(std::move(token));
}

void Tokenizer::reset_current_tag(Token::Type type) {
  // In-place reset: emit_current_tag moved the buffers out, so clearing
  // the fields is free — rebuilding a Token from scratch (and destroying
  // the husk) showed up as ~9% of tag-dense parses.
  current_tag_.type = type;
  current_tag_.name.clear();
  current_tag_.attributes.clear();
  current_tag_.self_closing = false;
  current_tag_.dropped_duplicate_attributes.clear();
  current_tag_.data.clear();
  current_tag_.public_identifier.clear();
  current_tag_.system_identifier.clear();
  current_tag_.has_public_identifier = false;
  current_tag_.has_system_identifier = false;
  current_tag_.force_quirks = false;
  current_tag_.position = token_start_;
  has_current_attr_ = false;
}

void Tokenizer::begin_start_tag() {
  reset_current_tag(Token::Type::kStartTag);
  current_tag_is_start_ = true;
}

void Tokenizer::begin_end_tag() {
  reset_current_tag(Token::Type::kEndTag);
  current_tag_is_start_ = false;
}

void Tokenizer::start_new_attribute() {
  finish_attribute_name();      // safety: completes a dangling name
  commit_current_attr_value();  // stores the previous attribute's value
  current_attr_name_.clear();
  current_attr_value_.clear();
  has_current_attr_ = true;
  current_attr_dropped_ = false;
  current_attr_position_ = input_.last_position();
}

void Tokenizer::commit_current_attr_value() {
  if (current_attr_dropped_ || current_attr_value_.empty()) return;
  if (current_tag_.attributes.empty()) return;
  if (current_tag_.attributes.back().name != current_attr_name_) return;
  current_tag_.attributes.back().value = std::move(current_attr_value_);
  current_attr_value_.clear();
}

void Tokenizer::finish_attribute_name() {
  if (!has_current_attr_) return;
  has_current_attr_ = false;
  if (current_attr_dropped_) return;
  // Duplicate-attribute rule (13.2.5.33): if an attribute of this name is
  // already on the token, this is a duplicate-attribute parse error and the
  // whole attribute (with its value, if any) is ignored.
  for (const Attribute& existing : current_tag_.attributes) {
    if (existing.name == current_attr_name_) {
      error_at(ParseError::DuplicateAttribute, current_attr_position_,
               current_attr_name_);
      current_tag_.dropped_duplicate_attributes.push_back(current_attr_name_);
      current_attr_dropped_ = true;
      return;
    }
  }
  current_tag_.attributes.push_back({current_attr_name_, {}});
}

void Tokenizer::append_to_attr_name(char32_t c) {
  append_utf8(c, current_attr_name_);
}

void Tokenizer::append_to_attr_value(char32_t c) {
  append_utf8(c, current_attr_value_);
}

void Tokenizer::emit_current_tag() {
  finish_attribute_name();
  commit_current_attr_value();
  current_attr_name_.clear();
  current_attr_value_.clear();
  current_attr_dropped_ = false;

  if (current_tag_.type == Token::Type::kEndTag) {
    if (!current_tag_.attributes.empty()) {
      error_at(ParseError::EndTagWithAttributes, current_tag_.position,
               current_tag_.name);
      current_tag_.attributes.clear();
    }
    if (current_tag_.self_closing) {
      error_at(ParseError::EndTagWithTrailingSolidus, current_tag_.position,
               current_tag_.name);
      current_tag_.self_closing = false;
    }
  } else {
    last_start_tag_name_ = current_tag_.name;
  }
  flush_text();
  sink_.process_token(std::move(current_tag_));
  current_tag_ = Token{};
}

void Tokenizer::emit_eof() {
  flush_text();
  Token token;
  token.type = Token::Type::kEof;
  token.position = input_.position();
  eof_emitted_ = true;
  sink_.process_token(std::move(token));
}

void Tokenizer::emit_comment() {
  flush_text();
  sink_.process_token(std::move(current_comment_));
  current_comment_ = Token{};
}

void Tokenizer::emit_doctype() {
  flush_text();
  sink_.process_token(std::move(current_doctype_));
  current_doctype_ = Token{};
}

bool Tokenizer::current_end_tag_is_appropriate() const {
  return !last_start_tag_name_.empty() &&
         current_tag_.name == last_start_tag_name_;
}

bool Tokenizer::char_ref_in_attribute() const {
  return return_state_ == TokenizerState::kAttributeValueDoubleQuoted ||
         return_state_ == TokenizerState::kAttributeValueSingleQuoted ||
         return_state_ == TokenizerState::kAttributeValueUnquoted;
}

void Tokenizer::flush_code_points_consumed_as_character_reference() {
  for (const char32_t c : temporary_buffer_) {
    if (char_ref_in_attribute()) {
      append_to_attr_value(c);
    } else {
      emit_char(c);
    }
  }
  temporary_buffer_.clear();
}

// --- the state machine ------------------------------------------------------

// NOLINTNEXTLINE(readability-function-size): mirrors the spec's 80 states.
void Tokenizer::step() {
  using S = TokenizerState;

#ifndef HV_OBS_DISABLED
  // One branch per step; a TLS store only when the state crosses a
  // group boundary (tag -> attrs -> text...), which is rare relative to
  // per-character work.
  const std::uint8_t prof_group = tok_group_of(state_);
  if (prof_group != prof_group_) {
    prof_group_ = prof_group;
    obs::prof::set_leaf(tok_group_scopes()[prof_group]);
    // Flight-recorder milestone, throttled: group changes are rare per
    // character but frequent per page (thousands on script-dense markup,
    // where every '<' or '-' bounces text_run <-> end_tag_scan), so
    // record every 256th transition — enough tail context to place a
    // crash inside the tokenizer without measurable per-page cost.
    if ((fdr_group_changes_++ & 255u) == 0) {
      obs::fdr::emit(obs::fdr::EventKind::kTokenizerState,
                     tok_group_fdr_scopes()[prof_group], fdr_group_changes_);
    }
  }
#endif

  // Fast path: batch plain text runs in the pure-text states.  With the
  // run-scanning path on, whole byte runs come straight off the input
  // buffer (no decode/re-encode); the per-character loop still handles
  // normalized newlines, reconsumed characters, and — for ill-formed
  // documents — non-ASCII bytes, which run scanning excludes.
  if (state_ == S::kData || state_ == S::kRcdata || state_ == S::kRawtext ||
      state_ == S::kScriptData || state_ == S::kPlaintext) {
    bool consumed_any = false;
    for (;;) {
      if (fastpath_) {
        // TextRunKind numbering matches the first five TokenizerState
        // values, so the state maps directly.
        const SourcePosition run_start = input_.position();
        const std::string_view run = input_.consume_text_run(
            static_cast<InputStream::TextRunKind>(state_));
        if (!run.empty()) {
          if (pending_text_.empty()) pending_text_position_ = run_start;
          pending_text_.append(run);
          consumed_any = true;
          // The run is maximal, so the next character is a stop byte; fall
          // through to the peek check (a normalized CR decodes to an
          // ordinary '\n' and loops back here via the slow path).
        }
      }
      if (!is_ordinary_text(input_.peek(), state_)) break;
      emit_char(input_.consume());
      consumed_any = true;
    }
    if (consumed_any) return;
  }

  switch (state_) {
    case S::kData: {
      const char32_t c = input_.consume();
      if (c == U'&') {
        return_state_ = S::kData;
        state_ = S::kCharacterReference;
      } else if (c == U'<') {
        token_start_ = input_.last_position();
        state_ = S::kTagOpen;
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        emit_null();
      } else if (c == kEofChar) {
        emit_eof();
      } else {
        emit_char(c);
      }
      return;
    }
    case S::kRcdata: {
      const char32_t c = input_.consume();
      if (c == U'&') {
        return_state_ = S::kRcdata;
        state_ = S::kCharacterReference;
      } else if (c == U'<') {
        state_ = S::kRcdataLessThanSign;
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        emit_char(kReplacementCharacter);
      } else if (c == kEofChar) {
        emit_eof();
      } else {
        emit_char(c);
      }
      return;
    }
    case S::kRawtext: {
      const char32_t c = input_.consume();
      if (c == U'<') {
        state_ = S::kRawtextLessThanSign;
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        emit_char(kReplacementCharacter);
      } else if (c == kEofChar) {
        emit_eof();
      } else {
        emit_char(c);
      }
      return;
    }
    case S::kScriptData: {
      const char32_t c = input_.consume();
      if (c == U'<') {
        state_ = S::kScriptDataLessThanSign;
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        emit_char(kReplacementCharacter);
      } else if (c == kEofChar) {
        emit_eof();
      } else {
        emit_char(c);
      }
      return;
    }
    case S::kPlaintext: {
      const char32_t c = input_.consume();
      if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        emit_char(kReplacementCharacter);
      } else if (c == kEofChar) {
        emit_eof();
      } else {
        emit_char(c);
      }
      return;
    }
    case S::kTagOpen: {
      const char32_t c = input_.consume();
      if (c == U'!') {
        state_ = S::kMarkupDeclarationOpen;
      } else if (c == U'/') {
        state_ = S::kEndTagOpen;
      } else if (is_ascii_alpha(c)) {
        begin_start_tag();
        input_.reconsume();
        state_ = S::kTagName;
      } else if (c == U'?') {
        error(ParseError::UnexpectedQuestionMarkInsteadOfTagName);
        current_comment_ = Token{};
        current_comment_.type = Token::Type::kComment;
        current_comment_.position = token_start_;
        input_.reconsume();
        state_ = S::kBogusComment;
      } else if (c == kEofChar) {
        error(ParseError::EofBeforeTagName);
        emit_char(U'<');
        emit_eof();
      } else {
        error(ParseError::InvalidFirstCharacterOfTagName);
        emit_char(U'<');
        input_.reconsume();
        state_ = S::kData;
      }
      return;
    }
    case S::kEndTagOpen: {
      const char32_t c = input_.consume();
      if (is_ascii_alpha(c)) {
        begin_end_tag();
        input_.reconsume();
        state_ = S::kTagName;
      } else if (c == U'>') {
        error(ParseError::MissingEndTagName);
        state_ = S::kData;
      } else if (c == kEofChar) {
        error(ParseError::EofBeforeTagName);
        emit_char(U'<');
        emit_char(U'/');
        emit_eof();
      } else {
        error(ParseError::InvalidFirstCharacterOfTagName);
        current_comment_ = Token{};
        current_comment_.type = Token::Type::kComment;
        current_comment_.position = token_start_;
        input_.reconsume();
        state_ = S::kBogusComment;
      }
      return;
    }
    case S::kTagName: {
      if (fastpath_) {
        const std::string_view run =
            input_.consume_text_run(InputStream::TextRunKind::kTagName);
        if (!run.empty()) current_tag_.name.append(run);
      }
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        state_ = S::kBeforeAttributeName;
      } else if (c == U'/') {
        state_ = S::kSelfClosingStartTag;
      } else if (c == U'>') {
        state_ = S::kData;
        emit_current_tag();
      } else if (is_ascii_upper_alpha(c)) {
        append_utf8(to_ascii_lower(c), current_tag_.name);
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        append_utf8(kReplacementCharacter, current_tag_.name);
      } else if (c == kEofChar) {
        error(ParseError::EofInTag);
        emit_eof();
      } else {
        append_utf8(c, current_tag_.name);
      }
      return;
    }
    // --- RCDATA / RAWTEXT / script end-tag recognition -------------------
    case S::kRcdataLessThanSign:
    case S::kRawtextLessThanSign: {
      const bool rcdata = state_ == S::kRcdataLessThanSign;
      const char32_t c = input_.consume();
      if (c == U'/') {
        temporary_buffer_.clear();
        state_ = rcdata ? S::kRcdataEndTagOpen : S::kRawtextEndTagOpen;
      } else {
        emit_char(U'<');
        input_.reconsume();
        state_ = rcdata ? S::kRcdata : S::kRawtext;
      }
      return;
    }
    case S::kRcdataEndTagOpen:
    case S::kRawtextEndTagOpen:
    case S::kScriptDataEndTagOpen:
    case S::kScriptDataEscapedEndTagOpen: {
      const char32_t c = input_.consume();
      S name_state;
      S fallback;
      switch (state_) {
        case S::kRcdataEndTagOpen:
          name_state = S::kRcdataEndTagName;
          fallback = S::kRcdata;
          break;
        case S::kRawtextEndTagOpen:
          name_state = S::kRawtextEndTagName;
          fallback = S::kRawtext;
          break;
        case S::kScriptDataEndTagOpen:
          name_state = S::kScriptDataEndTagName;
          fallback = S::kScriptData;
          break;
        default:
          name_state = S::kScriptDataEscapedEndTagName;
          fallback = S::kScriptDataEscaped;
          break;
      }
      if (is_ascii_alpha(c)) {
        token_start_ = input_.last_position();
        begin_end_tag();
        input_.reconsume();
        state_ = name_state;
      } else {
        emit_char(U'<');
        emit_char(U'/');
        input_.reconsume();
        state_ = fallback;
      }
      return;
    }
    case S::kRcdataEndTagName:
    case S::kRawtextEndTagName:
    case S::kScriptDataEndTagName:
    case S::kScriptDataEscapedEndTagName: {
      S fallback;
      switch (state_) {
        case S::kRcdataEndTagName:
          fallback = S::kRcdata;
          break;
        case S::kRawtextEndTagName:
          fallback = S::kRawtext;
          break;
        case S::kScriptDataEndTagName:
          fallback = S::kScriptData;
          break;
        default:
          fallback = S::kScriptDataEscaped;
          break;
      }
      const char32_t c = input_.consume();
      const bool appropriate = current_end_tag_is_appropriate();
      if (is_ascii_whitespace(c) && appropriate) {
        state_ = S::kBeforeAttributeName;
      } else if (c == U'/' && appropriate) {
        state_ = S::kSelfClosingStartTag;
      } else if (c == U'>' && appropriate) {
        state_ = S::kData;
        emit_current_tag();
      } else if (is_ascii_upper_alpha(c)) {
        append_utf8(to_ascii_lower(c), current_tag_.name);
        temporary_buffer_.push_back(c);
      } else if (is_ascii_lower_alpha(c)) {
        append_utf8(c, current_tag_.name);
        temporary_buffer_.push_back(c);
      } else {
        emit_char(U'<');
        emit_char(U'/');
        for (const char32_t tc : temporary_buffer_) emit_char(tc);
        temporary_buffer_.clear();
        input_.reconsume();
        state_ = fallback;
      }
      return;
    }
    case S::kScriptDataLessThanSign: {
      const char32_t c = input_.consume();
      if (c == U'/') {
        temporary_buffer_.clear();
        state_ = S::kScriptDataEndTagOpen;
      } else if (c == U'!') {
        state_ = S::kScriptDataEscapeStart;
        emit_char(U'<');
        emit_char(U'!');
      } else {
        emit_char(U'<');
        input_.reconsume();
        state_ = S::kScriptData;
      }
      return;
    }
    case S::kScriptDataEscapeStart: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        state_ = S::kScriptDataEscapeStartDash;
        emit_char(U'-');
      } else {
        input_.reconsume();
        state_ = S::kScriptData;
      }
      return;
    }
    case S::kScriptDataEscapeStartDash: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        state_ = S::kScriptDataEscapedDashDash;
        emit_char(U'-');
      } else {
        input_.reconsume();
        state_ = S::kScriptData;
      }
      return;
    }
    case S::kScriptDataEscaped: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        state_ = S::kScriptDataEscapedDash;
        emit_char(U'-');
      } else if (c == U'<') {
        state_ = S::kScriptDataEscapedLessThanSign;
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        emit_char(kReplacementCharacter);
      } else if (c == kEofChar) {
        error(ParseError::EofInScriptHtmlCommentLikeText);
        emit_eof();
      } else {
        emit_char(c);
      }
      return;
    }
    case S::kScriptDataEscapedDash: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        state_ = S::kScriptDataEscapedDashDash;
        emit_char(U'-');
      } else if (c == U'<') {
        state_ = S::kScriptDataEscapedLessThanSign;
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        state_ = S::kScriptDataEscaped;
        emit_char(kReplacementCharacter);
      } else if (c == kEofChar) {
        error(ParseError::EofInScriptHtmlCommentLikeText);
        emit_eof();
      } else {
        state_ = S::kScriptDataEscaped;
        emit_char(c);
      }
      return;
    }
    case S::kScriptDataEscapedDashDash: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        emit_char(U'-');
      } else if (c == U'<') {
        state_ = S::kScriptDataEscapedLessThanSign;
      } else if (c == U'>') {
        state_ = S::kScriptData;
        emit_char(U'>');
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        state_ = S::kScriptDataEscaped;
        emit_char(kReplacementCharacter);
      } else if (c == kEofChar) {
        error(ParseError::EofInScriptHtmlCommentLikeText);
        emit_eof();
      } else {
        state_ = S::kScriptDataEscaped;
        emit_char(c);
      }
      return;
    }
    case S::kScriptDataEscapedLessThanSign: {
      const char32_t c = input_.consume();
      if (c == U'/') {
        temporary_buffer_.clear();
        state_ = S::kScriptDataEscapedEndTagOpen;
      } else if (is_ascii_alpha(c)) {
        temporary_buffer_.clear();
        emit_char(U'<');
        input_.reconsume();
        state_ = S::kScriptDataDoubleEscapeStart;
      } else {
        emit_char(U'<');
        input_.reconsume();
        state_ = S::kScriptDataEscaped;
      }
      return;
    }
    case S::kScriptDataDoubleEscapeStart:
    case S::kScriptDataDoubleEscapeEnd: {
      const bool starting = state_ == S::kScriptDataDoubleEscapeStart;
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c) || c == U'/' || c == U'>') {
        const bool is_script = temporary_buffer_ == U"script";
        if (starting) {
          state_ = is_script ? S::kScriptDataDoubleEscaped
                             : S::kScriptDataEscaped;
        } else {
          state_ = is_script ? S::kScriptDataEscaped
                             : S::kScriptDataDoubleEscaped;
        }
        emit_char(c);
      } else if (is_ascii_upper_alpha(c)) {
        temporary_buffer_.push_back(to_ascii_lower(c));
        emit_char(c);
      } else if (is_ascii_lower_alpha(c)) {
        temporary_buffer_.push_back(c);
        emit_char(c);
      } else {
        input_.reconsume();
        state_ = starting ? S::kScriptDataEscaped : S::kScriptDataDoubleEscaped;
      }
      return;
    }
    case S::kScriptDataDoubleEscaped: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        state_ = S::kScriptDataDoubleEscapedDash;
        emit_char(U'-');
      } else if (c == U'<') {
        state_ = S::kScriptDataDoubleEscapedLessThanSign;
        emit_char(U'<');
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        emit_char(kReplacementCharacter);
      } else if (c == kEofChar) {
        error(ParseError::EofInScriptHtmlCommentLikeText);
        emit_eof();
      } else {
        emit_char(c);
      }
      return;
    }
    case S::kScriptDataDoubleEscapedDash: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        state_ = S::kScriptDataDoubleEscapedDashDash;
        emit_char(U'-');
      } else if (c == U'<') {
        state_ = S::kScriptDataDoubleEscapedLessThanSign;
        emit_char(U'<');
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        state_ = S::kScriptDataDoubleEscaped;
        emit_char(kReplacementCharacter);
      } else if (c == kEofChar) {
        error(ParseError::EofInScriptHtmlCommentLikeText);
        emit_eof();
      } else {
        state_ = S::kScriptDataDoubleEscaped;
        emit_char(c);
      }
      return;
    }
    case S::kScriptDataDoubleEscapedDashDash: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        emit_char(U'-');
      } else if (c == U'<') {
        state_ = S::kScriptDataDoubleEscapedLessThanSign;
        emit_char(U'<');
      } else if (c == U'>') {
        state_ = S::kScriptData;
        emit_char(U'>');
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        state_ = S::kScriptDataDoubleEscaped;
        emit_char(kReplacementCharacter);
      } else if (c == kEofChar) {
        error(ParseError::EofInScriptHtmlCommentLikeText);
        emit_eof();
      } else {
        state_ = S::kScriptDataDoubleEscaped;
        emit_char(c);
      }
      return;
    }
    case S::kScriptDataDoubleEscapedLessThanSign: {
      const char32_t c = input_.consume();
      if (c == U'/') {
        temporary_buffer_.clear();
        state_ = S::kScriptDataDoubleEscapeEnd;
        emit_char(U'/');
      } else {
        input_.reconsume();
        state_ = S::kScriptDataDoubleEscaped;
      }
      return;
    }
    // --- attributes -------------------------------------------------------
    case S::kBeforeAttributeName: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        // ignore
      } else if (c == U'/' || c == U'>' || c == kEofChar) {
        input_.reconsume();
        state_ = S::kAfterAttributeName;
      } else if (c == U'=') {
        error(ParseError::UnexpectedEqualsSignBeforeAttributeName);
        start_new_attribute();
        append_to_attr_name(c);
        state_ = S::kAttributeName;
      } else {
        start_new_attribute();
        input_.reconsume();
        state_ = S::kAttributeName;
      }
      return;
    }
    case S::kAttributeName: {
      if (fastpath_) {
        const std::string_view run =
            input_.consume_text_run(InputStream::TextRunKind::kAttrName);
        if (!run.empty()) current_attr_name_.append(run);
      }
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c) || c == U'/' || c == U'>' || c == kEofChar) {
        finish_attribute_name();
        input_.reconsume();
        state_ = S::kAfterAttributeName;
      } else if (c == U'=') {
        finish_attribute_name();
        state_ = S::kBeforeAttributeValue;
      } else if (is_ascii_upper_alpha(c)) {
        append_to_attr_name(to_ascii_lower(c));
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        append_to_attr_name(kReplacementCharacter);
      } else if (c == U'"' || c == U'\'' || c == U'<') {
        error(ParseError::UnexpectedCharacterInAttributeName);
        append_to_attr_name(c);
      } else {
        append_to_attr_name(c);
      }
      return;
    }
    case S::kAfterAttributeName: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        // ignore
      } else if (c == U'/') {
        state_ = S::kSelfClosingStartTag;
      } else if (c == U'=') {
        state_ = S::kBeforeAttributeValue;
      } else if (c == U'>') {
        state_ = S::kData;
        emit_current_tag();
      } else if (c == kEofChar) {
        error(ParseError::EofInTag);
        emit_eof();
      } else {
        start_new_attribute();
        input_.reconsume();
        state_ = S::kAttributeName;
      }
      return;
    }
    case S::kBeforeAttributeValue: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        // ignore
      } else if (c == U'"') {
        state_ = S::kAttributeValueDoubleQuoted;
      } else if (c == U'\'') {
        state_ = S::kAttributeValueSingleQuoted;
      } else if (c == U'>') {
        error(ParseError::MissingAttributeValue);
        state_ = S::kData;
        emit_current_tag();
      } else {
        input_.reconsume();
        state_ = S::kAttributeValueUnquoted;
      }
      return;
    }
    case S::kAttributeValueDoubleQuoted:
    case S::kAttributeValueSingleQuoted: {
      const char32_t quote =
          state_ == S::kAttributeValueDoubleQuoted ? U'"' : U'\'';
      if (fastpath_) {
        // Batch the plain bytes of the value; the consume below then sees
        // the delimiter/special character that stopped the run.
        const std::string_view run = input_.consume_text_run(
            state_ == S::kAttributeValueDoubleQuoted
                ? InputStream::TextRunKind::kAttrValueDoubleQuoted
                : InputStream::TextRunKind::kAttrValueSingleQuoted);
        if (!run.empty()) current_attr_value_.append(run);
      }
      const char32_t c = input_.consume();
      if (c == quote) {
        state_ = S::kAfterAttributeValueQuoted;
      } else if (c == U'&') {
        return_state_ = state_;
        state_ = S::kCharacterReference;
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        append_to_attr_value(kReplacementCharacter);
      } else if (c == kEofChar) {
        error(ParseError::EofInTag);
        emit_eof();
      } else {
        append_to_attr_value(c);
      }
      return;
    }
    case S::kAttributeValueUnquoted: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        state_ = S::kBeforeAttributeName;
      } else if (c == U'&') {
        return_state_ = state_;
        state_ = S::kCharacterReference;
      } else if (c == U'>') {
        state_ = S::kData;
        emit_current_tag();
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        append_to_attr_value(kReplacementCharacter);
      } else if (c == kEofChar) {
        error(ParseError::EofInTag);
        emit_eof();
      } else {
        if (c == U'"' || c == U'\'' || c == U'<' || c == U'=' || c == U'`') {
          error(ParseError::UnexpectedCharacterInUnquotedAttributeValue);
        }
        append_to_attr_value(c);
      }
      return;
    }
    case S::kAfterAttributeValueQuoted: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        state_ = S::kBeforeAttributeName;
      } else if (c == U'/') {
        state_ = S::kSelfClosingStartTag;
      } else if (c == U'>') {
        state_ = S::kData;
        emit_current_tag();
      } else if (c == kEofChar) {
        error(ParseError::EofInTag);
        emit_eof();
      } else {
        // FB2: the parser tolerates glued attributes by pretending there was
        // a space (paper section 3.2.2).
        error(ParseError::MissingWhitespaceBetweenAttributes);
        input_.reconsume();
        state_ = S::kBeforeAttributeName;
      }
      return;
    }
    case S::kSelfClosingStartTag: {
      const char32_t c = input_.consume();
      if (c == U'>') {
        current_tag_.self_closing = true;
        state_ = S::kData;
        emit_current_tag();
      } else if (c == kEofChar) {
        error(ParseError::EofInTag);
        emit_eof();
      } else {
        // FB1: a stray slash inside a tag is treated like whitespace
        // (paper section 3.2.2).
        error(ParseError::UnexpectedSolidusInTag);
        input_.reconsume();
        state_ = S::kBeforeAttributeName;
      }
      return;
    }
    // --- comments and bogus comments --------------------------------------
    case S::kBogusComment: {
      const char32_t c = input_.consume();
      if (c == U'>') {
        state_ = S::kData;
        emit_comment();
      } else if (c == kEofChar) {
        emit_comment();
        emit_eof();
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        append_utf8(kReplacementCharacter, current_comment_.data);
      } else {
        append_utf8(c, current_comment_.data);
      }
      return;
    }
    case S::kMarkupDeclarationOpen: {
      if (input_.lookahead_matches("--")) {
        input_.advance(2);
        current_comment_ = Token{};
        current_comment_.type = Token::Type::kComment;
        current_comment_.position = token_start_;
        state_ = S::kCommentStart;
      } else if (input_.lookahead_matches_insensitive("doctype")) {
        input_.advance(7);
        state_ = S::kDoctype;
      } else if (input_.lookahead_matches("[CDATA[")) {
        input_.advance(7);
        if (cdata_allowed_) {
          state_ = S::kCdataSection;
        } else {
          error(ParseError::CdataInHtmlContent);
          current_comment_ = Token{};
          current_comment_.type = Token::Type::kComment;
          current_comment_.position = token_start_;
          current_comment_.data = "[CDATA[";
          state_ = S::kBogusComment;
        }
      } else {
        error(ParseError::IncorrectlyOpenedComment);
        current_comment_ = Token{};
        current_comment_.type = Token::Type::kComment;
        current_comment_.position = token_start_;
        state_ = S::kBogusComment;
      }
      return;
    }
    case S::kCommentStart: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        state_ = S::kCommentStartDash;
      } else if (c == U'>') {
        error(ParseError::AbruptClosingOfEmptyComment);
        state_ = S::kData;
        emit_comment();
      } else {
        input_.reconsume();
        state_ = S::kComment;
      }
      return;
    }
    case S::kCommentStartDash: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        state_ = S::kCommentEnd;
      } else if (c == U'>') {
        error(ParseError::AbruptClosingOfEmptyComment);
        state_ = S::kData;
        emit_comment();
      } else if (c == kEofChar) {
        error(ParseError::EofInComment);
        emit_comment();
        emit_eof();
      } else {
        current_comment_.data.push_back('-');
        input_.reconsume();
        state_ = S::kComment;
      }
      return;
    }
    case S::kComment: {
      const char32_t c = input_.consume();
      if (c == U'<') {
        append_utf8(c, current_comment_.data);
        state_ = S::kCommentLessThanSign;
      } else if (c == U'-') {
        state_ = S::kCommentEndDash;
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        append_utf8(kReplacementCharacter, current_comment_.data);
      } else if (c == kEofChar) {
        error(ParseError::EofInComment);
        emit_comment();
        emit_eof();
      } else {
        append_utf8(c, current_comment_.data);
      }
      return;
    }
    case S::kCommentLessThanSign: {
      const char32_t c = input_.consume();
      if (c == U'!') {
        append_utf8(c, current_comment_.data);
        state_ = S::kCommentLessThanSignBang;
      } else if (c == U'<') {
        append_utf8(c, current_comment_.data);
      } else {
        input_.reconsume();
        state_ = S::kComment;
      }
      return;
    }
    case S::kCommentLessThanSignBang: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        state_ = S::kCommentLessThanSignBangDash;
      } else {
        input_.reconsume();
        state_ = S::kComment;
      }
      return;
    }
    case S::kCommentLessThanSignBangDash: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        state_ = S::kCommentLessThanSignBangDashDash;
      } else {
        input_.reconsume();
        state_ = S::kCommentEndDash;
      }
      return;
    }
    case S::kCommentLessThanSignBangDashDash: {
      const char32_t c = input_.consume();
      if (c != U'>' && c != kEofChar) {
        error(ParseError::NestedComment);
      }
      input_.reconsume();
      state_ = S::kCommentEnd;
      return;
    }
    case S::kCommentEndDash: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        state_ = S::kCommentEnd;
      } else if (c == kEofChar) {
        error(ParseError::EofInComment);
        emit_comment();
        emit_eof();
      } else {
        current_comment_.data.push_back('-');
        input_.reconsume();
        state_ = S::kComment;
      }
      return;
    }
    case S::kCommentEnd: {
      const char32_t c = input_.consume();
      if (c == U'>') {
        state_ = S::kData;
        emit_comment();
      } else if (c == U'!') {
        state_ = S::kCommentEndBang;
      } else if (c == U'-') {
        current_comment_.data.push_back('-');
      } else if (c == kEofChar) {
        error(ParseError::EofInComment);
        emit_comment();
        emit_eof();
      } else {
        current_comment_.data += "--";
        input_.reconsume();
        state_ = S::kComment;
      }
      return;
    }
    case S::kCommentEndBang: {
      const char32_t c = input_.consume();
      if (c == U'-') {
        current_comment_.data += "--!";
        state_ = S::kCommentEndDash;
      } else if (c == U'>') {
        error(ParseError::IncorrectlyClosedComment);
        state_ = S::kData;
        emit_comment();
      } else if (c == kEofChar) {
        error(ParseError::EofInComment);
        emit_comment();
        emit_eof();
      } else {
        current_comment_.data += "--!";
        input_.reconsume();
        state_ = S::kComment;
      }
      return;
    }
    // --- DOCTYPE -----------------------------------------------------------
    case S::kDoctype: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        state_ = S::kBeforeDoctypeName;
      } else if (c == U'>') {
        input_.reconsume();
        state_ = S::kBeforeDoctypeName;
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_ = Token{};
        current_doctype_.type = Token::Type::kDoctype;
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        error(ParseError::MissingWhitespaceBeforeDoctypeName);
        input_.reconsume();
        state_ = S::kBeforeDoctypeName;
      }
      return;
    }
    case S::kBeforeDoctypeName: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        // ignore
      } else if (c == U'>') {
        error(ParseError::MissingDoctypeName);
        current_doctype_ = Token{};
        current_doctype_.type = Token::Type::kDoctype;
        current_doctype_.force_quirks = true;
        state_ = S::kData;
        emit_doctype();
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_ = Token{};
        current_doctype_.type = Token::Type::kDoctype;
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        current_doctype_ = Token{};
        current_doctype_.type = Token::Type::kDoctype;
        current_doctype_.position = token_start_;
        if (c == U'\0') {
          error(ParseError::UnexpectedNullCharacter);
          append_utf8(kReplacementCharacter, current_doctype_.name);
        } else {
          append_utf8(to_ascii_lower(c), current_doctype_.name);
        }
        state_ = S::kDoctypeName;
      }
      return;
    }
    case S::kDoctypeName: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        state_ = S::kAfterDoctypeName;
      } else if (c == U'>') {
        state_ = S::kData;
        emit_doctype();
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        append_utf8(kReplacementCharacter, current_doctype_.name);
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        append_utf8(to_ascii_lower(c), current_doctype_.name);
      }
      return;
    }
    case S::kAfterDoctypeName: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        // ignore
      } else if (c == U'>') {
        state_ = S::kData;
        emit_doctype();
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        input_.reconsume();
        if (input_.lookahead_matches_insensitive("public")) {
          input_.advance(6);
          state_ = S::kAfterDoctypePublicKeyword;
        } else if (input_.lookahead_matches_insensitive("system")) {
          input_.advance(6);
          state_ = S::kAfterDoctypeSystemKeyword;
        } else {
          error(ParseError::InvalidCharacterSequenceAfterDoctypeName);
          current_doctype_.force_quirks = true;
          state_ = S::kBogusDoctype;
        }
      }
      return;
    }
    case S::kAfterDoctypePublicKeyword: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        state_ = S::kBeforeDoctypePublicIdentifier;
      } else if (c == U'"' || c == U'\'') {
        error(ParseError::MissingWhitespaceAfterDoctypePublicKeyword);
        current_doctype_.has_public_identifier = true;
        state_ = c == U'"' ? S::kDoctypePublicIdentifierDoubleQuoted
                           : S::kDoctypePublicIdentifierSingleQuoted;
      } else if (c == U'>') {
        error(ParseError::MissingDoctypePublicIdentifier);
        current_doctype_.force_quirks = true;
        state_ = S::kData;
        emit_doctype();
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        error(ParseError::MissingQuoteBeforeDoctypePublicIdentifier);
        current_doctype_.force_quirks = true;
        input_.reconsume();
        state_ = S::kBogusDoctype;
      }
      return;
    }
    case S::kBeforeDoctypePublicIdentifier: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        // ignore
      } else if (c == U'"' || c == U'\'') {
        current_doctype_.has_public_identifier = true;
        state_ = c == U'"' ? S::kDoctypePublicIdentifierDoubleQuoted
                           : S::kDoctypePublicIdentifierSingleQuoted;
      } else if (c == U'>') {
        error(ParseError::MissingDoctypePublicIdentifier);
        current_doctype_.force_quirks = true;
        state_ = S::kData;
        emit_doctype();
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        error(ParseError::MissingQuoteBeforeDoctypePublicIdentifier);
        current_doctype_.force_quirks = true;
        input_.reconsume();
        state_ = S::kBogusDoctype;
      }
      return;
    }
    case S::kDoctypePublicIdentifierDoubleQuoted:
    case S::kDoctypePublicIdentifierSingleQuoted: {
      const char32_t quote =
          state_ == S::kDoctypePublicIdentifierDoubleQuoted ? U'"' : U'\'';
      const char32_t c = input_.consume();
      if (c == quote) {
        state_ = S::kAfterDoctypePublicIdentifier;
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        append_utf8(kReplacementCharacter, current_doctype_.public_identifier);
      } else if (c == U'>') {
        error(ParseError::AbruptDoctypePublicIdentifier);
        current_doctype_.force_quirks = true;
        state_ = S::kData;
        emit_doctype();
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        append_utf8(c, current_doctype_.public_identifier);
      }
      return;
    }
    case S::kAfterDoctypePublicIdentifier: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        state_ = S::kBetweenDoctypePublicAndSystemIdentifiers;
      } else if (c == U'>') {
        state_ = S::kData;
        emit_doctype();
      } else if (c == U'"' || c == U'\'') {
        error(
            ParseError::MissingWhitespaceBetweenDoctypePublicAndSystemIdentifiers);
        current_doctype_.has_system_identifier = true;
        state_ = c == U'"' ? S::kDoctypeSystemIdentifierDoubleQuoted
                           : S::kDoctypeSystemIdentifierSingleQuoted;
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        error(ParseError::MissingQuoteBeforeDoctypeSystemIdentifier);
        current_doctype_.force_quirks = true;
        input_.reconsume();
        state_ = S::kBogusDoctype;
      }
      return;
    }
    case S::kBetweenDoctypePublicAndSystemIdentifiers: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        // ignore
      } else if (c == U'>') {
        state_ = S::kData;
        emit_doctype();
      } else if (c == U'"' || c == U'\'') {
        current_doctype_.has_system_identifier = true;
        state_ = c == U'"' ? S::kDoctypeSystemIdentifierDoubleQuoted
                           : S::kDoctypeSystemIdentifierSingleQuoted;
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        error(ParseError::MissingQuoteBeforeDoctypeSystemIdentifier);
        current_doctype_.force_quirks = true;
        input_.reconsume();
        state_ = S::kBogusDoctype;
      }
      return;
    }
    case S::kAfterDoctypeSystemKeyword: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        state_ = S::kBeforeDoctypeSystemIdentifier;
      } else if (c == U'"' || c == U'\'') {
        error(ParseError::MissingWhitespaceAfterDoctypeSystemKeyword);
        current_doctype_.has_system_identifier = true;
        state_ = c == U'"' ? S::kDoctypeSystemIdentifierDoubleQuoted
                           : S::kDoctypeSystemIdentifierSingleQuoted;
      } else if (c == U'>') {
        error(ParseError::MissingDoctypeSystemIdentifier);
        current_doctype_.force_quirks = true;
        state_ = S::kData;
        emit_doctype();
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        error(ParseError::MissingQuoteBeforeDoctypeSystemIdentifier);
        current_doctype_.force_quirks = true;
        input_.reconsume();
        state_ = S::kBogusDoctype;
      }
      return;
    }
    case S::kBeforeDoctypeSystemIdentifier: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        // ignore
      } else if (c == U'"' || c == U'\'') {
        current_doctype_.has_system_identifier = true;
        state_ = c == U'"' ? S::kDoctypeSystemIdentifierDoubleQuoted
                           : S::kDoctypeSystemIdentifierSingleQuoted;
      } else if (c == U'>') {
        error(ParseError::MissingDoctypeSystemIdentifier);
        current_doctype_.force_quirks = true;
        state_ = S::kData;
        emit_doctype();
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        error(ParseError::MissingQuoteBeforeDoctypeSystemIdentifier);
        current_doctype_.force_quirks = true;
        input_.reconsume();
        state_ = S::kBogusDoctype;
      }
      return;
    }
    case S::kDoctypeSystemIdentifierDoubleQuoted:
    case S::kDoctypeSystemIdentifierSingleQuoted: {
      const char32_t quote =
          state_ == S::kDoctypeSystemIdentifierDoubleQuoted ? U'"' : U'\'';
      const char32_t c = input_.consume();
      if (c == quote) {
        state_ = S::kAfterDoctypeSystemIdentifier;
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
        append_utf8(kReplacementCharacter, current_doctype_.system_identifier);
      } else if (c == U'>') {
        error(ParseError::AbruptDoctypeSystemIdentifier);
        current_doctype_.force_quirks = true;
        state_ = S::kData;
        emit_doctype();
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        append_utf8(c, current_doctype_.system_identifier);
      }
      return;
    }
    case S::kAfterDoctypeSystemIdentifier: {
      const char32_t c = input_.consume();
      if (is_ascii_whitespace(c)) {
        // ignore
      } else if (c == U'>') {
        state_ = S::kData;
        emit_doctype();
      } else if (c == kEofChar) {
        error(ParseError::EofInDoctype);
        current_doctype_.force_quirks = true;
        emit_doctype();
        emit_eof();
      } else {
        error(ParseError::UnexpectedCharacterAfterDoctypeSystemIdentifier);
        input_.reconsume();
        state_ = S::kBogusDoctype;
      }
      return;
    }
    case S::kBogusDoctype: {
      const char32_t c = input_.consume();
      if (c == U'>') {
        state_ = S::kData;
        emit_doctype();
      } else if (c == U'\0') {
        error(ParseError::UnexpectedNullCharacter);
      } else if (c == kEofChar) {
        emit_doctype();
        emit_eof();
      }
      return;
    }
    // --- CDATA -------------------------------------------------------------
    case S::kCdataSection: {
      const char32_t c = input_.consume();
      if (c == U']') {
        state_ = S::kCdataSectionBracket;
      } else if (c == kEofChar) {
        error(ParseError::EofInCdata);
        emit_eof();
      } else if (c == U'\0') {
        emit_null();
      } else {
        emit_char(c);
      }
      return;
    }
    case S::kCdataSectionBracket: {
      const char32_t c = input_.consume();
      if (c == U']') {
        state_ = S::kCdataSectionEnd;
      } else {
        emit_char(U']');
        input_.reconsume();
        state_ = S::kCdataSection;
      }
      return;
    }
    case S::kCdataSectionEnd: {
      const char32_t c = input_.consume();
      if (c == U']') {
        emit_char(U']');
      } else if (c == U'>') {
        state_ = S::kData;
      } else {
        emit_char(U']');
        emit_char(U']');
        input_.reconsume();
        state_ = S::kCdataSection;
      }
      return;
    }
    // --- character references ---------------------------------------------
    case S::kCharacterReference: {
      temporary_buffer_.clear();
      temporary_buffer_.push_back(U'&');
      const char32_t c = input_.consume();
      if (is_ascii_alphanumeric(c)) {
        input_.reconsume();
        state_ = S::kNamedCharacterReference;
      } else if (c == U'#') {
        temporary_buffer_.push_back(c);
        state_ = S::kNumericCharacterReference;
      } else {
        flush_code_points_consumed_as_character_reference();
        input_.reconsume();
        state_ = return_state_;
      }
      return;
    }
    case S::kNamedCharacterReference: {
      // Consume the maximum number of characters matching a table entry.
      //
      // Fast path (non-scalar backends): match the generated trie directly
      // against the raw byte window.  Entity names are pure ASCII, so for
      // the matched prefix bytes and characters are 1:1, and the bytes the
      // preprocessor would rewrite (CR and non-ASCII leads) can neither be
      // part of a match nor change the next-after predicates below — CR vs
      // LF and raw lead byte vs decoded char land on the same side of
      // '=' / alphanumeric every time.
      std::size_t matched = 0;
      const NamedEntity* entity = nullptr;
      char32_t fast_next_after = kEofChar;
      if (simd_entities_) {
        const std::string_view window = input_.lookahead_bytes();
        entity = match_named_entity_trie(window, &matched);
        if (matched < window.size()) {
          fast_next_after =
              static_cast<char32_t>(static_cast<unsigned char>(window[matched]));
        }
      } else {
        std::string candidate;
        candidate.reserve(32);
        for (std::size_t i = 0; i < 32; ++i) {
          const char32_t c = input_.peek(i);
          if (c == kEofChar || c > 0x7F) break;
          candidate.push_back(static_cast<char>(c));
          if (c == U';') break;
        }
        entity = match_named_entity_reference(candidate, &matched);
        if (entity != nullptr) {
          fast_next_after =
              matched < candidate.size()
                  ? static_cast<char32_t>(
                        static_cast<unsigned char>(candidate[matched]))
                  : input_.peek(matched);
        }
      }
      if (entity != nullptr) {
        const bool ends_with_semicolon = entity->name.back() == ';';
        const char32_t next_after = fast_next_after;
        // Historical attribute exception: "&not" followed by "=in" etc. is
        // left alone inside attribute values.
        if (char_ref_in_attribute() && !ends_with_semicolon &&
            (next_after == U'=' || is_ascii_alphanumeric(next_after))) {
          for (const char name_char : entity->name.substr(0, matched)) {
            temporary_buffer_.push_back(
                static_cast<char32_t>(static_cast<unsigned char>(name_char)));
          }
          if (simd_entities_) {
            input_.advance_ascii_no_newline(matched);
          } else {
            input_.advance(matched);
          }
          flush_code_points_consumed_as_character_reference();
          state_ = return_state_;
          return;
        }
        if (simd_entities_) {
          input_.advance_ascii_no_newline(matched);
        } else {
          input_.advance(matched);
        }
        if (!ends_with_semicolon) {
          error(ParseError::MissingSemicolonAfterCharacterReference);
        }
        temporary_buffer_.clear();
        temporary_buffer_.push_back(entity->first);
        if (entity->second != 0) temporary_buffer_.push_back(entity->second);
        flush_code_points_consumed_as_character_reference();
        state_ = return_state_;
      } else {
        flush_code_points_consumed_as_character_reference();
        state_ = S::kAmbiguousAmpersand;
      }
      return;
    }
    case S::kAmbiguousAmpersand: {
      const char32_t c = input_.consume();
      if (is_ascii_alphanumeric(c)) {
        if (char_ref_in_attribute()) {
          append_to_attr_value(c);
        } else {
          emit_char(c);
        }
      } else if (c == U';') {
        error(ParseError::UnknownNamedCharacterReference);
        input_.reconsume();
        state_ = return_state_;
      } else {
        input_.reconsume();
        state_ = return_state_;
      }
      return;
    }
    case S::kNumericCharacterReference: {
      char_ref_code_ = 0;
      const char32_t c = input_.consume();
      if (c == U'x' || c == U'X') {
        temporary_buffer_.push_back(c);
        state_ = S::kHexadecimalCharacterReferenceStart;
      } else {
        input_.reconsume();
        state_ = S::kDecimalCharacterReferenceStart;
      }
      return;
    }
    case S::kHexadecimalCharacterReferenceStart: {
      const char32_t c = input_.consume();
      if (is_ascii_hex_digit(c)) {
        input_.reconsume();
        state_ = S::kHexadecimalCharacterReference;
      } else {
        error(ParseError::AbsenceOfDigitsInNumericCharacterReference);
        flush_code_points_consumed_as_character_reference();
        input_.reconsume();
        state_ = return_state_;
      }
      return;
    }
    case S::kDecimalCharacterReferenceStart: {
      const char32_t c = input_.consume();
      if (is_ascii_digit(c)) {
        input_.reconsume();
        state_ = S::kDecimalCharacterReference;
      } else {
        error(ParseError::AbsenceOfDigitsInNumericCharacterReference);
        flush_code_points_consumed_as_character_reference();
        input_.reconsume();
        state_ = return_state_;
      }
      return;
    }
    case S::kHexadecimalCharacterReference: {
      const char32_t c = input_.consume();
      if (is_ascii_hex_digit(c)) {
        if (char_ref_code_ < 0x200000) {
          char32_t digit = 0;
          if (is_ascii_digit(c)) {
            digit = c - U'0';
          } else {
            digit = to_ascii_lower(c) - U'a' + 10;
          }
          char_ref_code_ = char_ref_code_ * 16 + digit;
        }
      } else if (c == U';') {
        state_ = S::kNumericCharacterReferenceEnd;
      } else {
        error(ParseError::MissingSemicolonAfterCharacterReference);
        input_.reconsume();
        state_ = S::kNumericCharacterReferenceEnd;
      }
      return;
    }
    case S::kDecimalCharacterReference: {
      const char32_t c = input_.consume();
      if (is_ascii_digit(c)) {
        if (char_ref_code_ < 0x200000) {
          char_ref_code_ = char_ref_code_ * 10 + (c - U'0');
        }
      } else if (c == U';') {
        state_ = S::kNumericCharacterReferenceEnd;
      } else {
        error(ParseError::MissingSemicolonAfterCharacterReference);
        input_.reconsume();
        state_ = S::kNumericCharacterReferenceEnd;
      }
      return;
    }
    case S::kNumericCharacterReferenceEnd: {
      // This state does not consume a character.
      const char32_t original = char_ref_code_;
      bool had_error = false;
      const char32_t value =
          sanitize_numeric_reference(char_ref_code_, &had_error);
      if (had_error) {
        if (original == 0) {
          error(ParseError::NullCharacterReference);
        } else if (original > 0x10FFFF) {
          error(ParseError::CharacterReferenceOutsideUnicodeRange);
        } else if (original >= 0xD800 && original <= 0xDFFF) {
          error(ParseError::SurrogateCharacterReference);
        } else if ((original >= 0xFDD0 && original <= 0xFDEF) ||
                   (original & 0xFFFE) == 0xFFFE) {
          error(ParseError::NoncharacterCharacterReference);
        } else {
          error(ParseError::ControlCharacterReference);
        }
      }
      temporary_buffer_.clear();
      temporary_buffer_.push_back(value);
      flush_code_points_consumed_as_character_reference();
      state_ = return_state_;
      return;
    }
  }
}

}  // namespace hv::html
