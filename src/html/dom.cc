#include "html/dom.h"

#include <algorithm>

namespace hv::html {

std::string_view to_string(Namespace ns) noexcept {
  switch (ns) {
    case Namespace::kHtml:
      return "html";
    case Namespace::kSvg:
      return "svg";
    case Namespace::kMathMl:
      return "mathml";
  }
  return "html";
}

Element* Node::as_element() noexcept {
  return is_element() ? static_cast<Element*>(this) : nullptr;
}

const Element* Node::as_element() const noexcept {
  return is_element() ? static_cast<const Element*>(this) : nullptr;
}

void Node::append_child(Node* child) { insert_before(child, nullptr); }

void Node::insert_before(Node* child, Node* reference) {
  if (child == nullptr || child == this) return;
  if (child->parent_ != nullptr) child->parent_->remove_child(child);
  child->parent_ = this;
  if (reference == nullptr) {
    children_.push_back(child);
    return;
  }
  const auto it = std::find(children_.begin(), children_.end(), reference);
  children_.insert(it, child);  // appends when reference not found
}

void Node::remove_child(Node* child) {
  const auto it = std::find(children_.begin(), children_.end(), child);
  if (it == children_.end()) return;
  children_.erase(it);
  child->parent_ = nullptr;
}

std::size_t Node::index_of(const Node* child) const noexcept {
  const auto it = std::find(children_.begin(), children_.end(), child);
  return it == children_.end()
             ? static_cast<std::size_t>(-1)
             : static_cast<std::size_t>(it - children_.begin());
}

void Node::for_each(const std::function<void(Node&)>& visit) {
  visit(*this);
  // Children may be mutated by the visitor; iterate over a snapshot.
  const std::vector<Node*> snapshot = children_;
  for (Node* child : snapshot) child->for_each(visit);
}

void Node::for_each(const std::function<void(const Node&)>& visit) const {
  visit(*this);
  for (const Node* child : children_) child->for_each(visit);
}

std::string Node::text_content() const {
  std::string out;
  for_each([&out](const Node& node) {
    if (node.type() == NodeType::kText) {
      out += static_cast<const Text&>(node).data;
    }
  });
  return out;
}

std::optional<std::string_view> Element::get_attribute(
    std::string_view name) const noexcept {
  for (const DomAttribute& attr : attrs_) {
    if (attr.name == name) return std::string_view{attr.value};
  }
  return std::nullopt;
}

void Element::set_attribute(std::string_view name, std::string_view value) {
  for (DomAttribute& attr : attrs_) {
    if (attr.name == name) {
      attr.value.assign(value);
      return;
    }
  }
  attrs_.push_back({document_->names().intern(name), std::string(value)});
}

bool Element::add_attribute_if_missing(std::string_view name,
                                       std::string_view value) {
  if (get_attribute(name).has_value()) return false;
  attrs_.push_back({document_->names().intern(name), std::string(value)});
  return true;
}

void Element::remove_attribute(std::string_view name) {
  attrs_.erase(std::remove_if(attrs_.begin(), attrs_.end(),
                              [name](const DomAttribute& attr) {
                                return attr.name == name;
                              }),
               attrs_.end());
}

Element* Document::create_element(std::string_view tag_name, Namespace ns) {
  Element* element = arena_.create<Element>();
  element->document_ = this;
  element->tag_name_ = interner_.intern(tag_name);
  element->ns_ = ns;
  // Parse-time foreign-content flags: same predicate as the pipeline's old
  // get_elements_by_tag("math"/"svg", /*any_namespace=*/true) scan.
  if (tag_name == "math") {
    saw_math_ = true;
  } else if (tag_name == "svg") {
    saw_svg_ = true;
  }
  return element;
}

Text* Document::create_text(std::string_view data) {
  Text* text = arena_.create<Text>();
  text->data.assign(data);
  return text;
}

Comment* Document::create_comment(std::string_view data) {
  Comment* comment = arena_.create<Comment>();
  comment->data.assign(data);
  return comment;
}

DocumentType* Document::create_doctype(std::string_view name) {
  DocumentType* doctype = arena_.create<DocumentType>();
  doctype->name.assign(name);
  return doctype;
}

Element* Document::document_element() const noexcept {
  for (Node* child : children()) {
    if (Element* element = child->as_element()) return element;
  }
  return nullptr;
}

Element* Document::find_direct_child(const Element* parent,
                                     std::string_view tag) const noexcept {
  if (parent == nullptr) return nullptr;
  for (Node* child : parent->children()) {
    Element* element = child->as_element();
    if (element != nullptr && element->ns() == Namespace::kHtml &&
        element->tag_name() == tag) {
      return element;
    }
  }
  return nullptr;
}

Element* Document::head() const noexcept {
  return find_direct_child(document_element(), "head");
}

Element* Document::body() const noexcept {
  return find_direct_child(document_element(), "body");
}

std::vector<Element*> Document::get_elements_by_tag(std::string_view tag_name,
                                                    bool any_namespace) const {
  std::vector<Element*> result;
  const_cast<Document*>(this)->for_each([&](Node& node) {
    Element* element = node.as_element();
    if (element != nullptr && element->tag_name() == tag_name &&
        (any_namespace || element->ns() == Namespace::kHtml)) {
      result.push_back(element);
    }
  });
  return result;
}

}  // namespace hv::html
