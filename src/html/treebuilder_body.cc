// The "in body" insertion mode, table modes, select modes, template mode,
// and foreign content (WHATWG HTML 13.2.6.4.7+ and 13.2.6.5).
#include <algorithm>
#include <unordered_set>

#include "html/encoding.h"
#include "html/treebuilder.h"

namespace hv::html {
namespace {

using TagSet = std::unordered_set<std::string_view>;

bool in_set(const TagSet& set, std::string_view tag) {
  return set.find(tag) != set.end();
}

std::size_t leading_ws(std::string_view data) {
  std::size_t i = 0;
  while (i < data.size() &&
         is_ascii_whitespace(static_cast<unsigned char>(data[i]))) {
    ++i;
  }
  return i;
}

bool all_ws(std::string_view data) { return leading_ws(data) == data.size(); }

bool is_heading(std::string_view tag) {
  return tag.size() == 2 && tag[0] == 'h' && tag[1] >= '1' && tag[1] <= '6';
}

Token synthetic_start_tag(std::string_view name, SourcePosition position) {
  Token token;
  token.type = Token::Type::kStartTag;
  token.name.assign(name);
  token.position = position;
  return token;
}

const TagSet kBlockTags = {
    "address", "article",   "aside",  "blockquote", "center", "details",
    "dialog",  "dir",       "div",    "dl",         "fieldset",
    "figcaption", "figure", "footer", "header",     "hgroup", "main",
    "menu",    "nav",       "ol",     "p",          "section", "summary",
    "ul"};

const TagSet kFormattingTags = {"b",  "big",   "code",   "em", "font",
                                "i",  "s",     "small",  "strike",
                                "strong", "tt", "u"};

}  // namespace

// --- in body ------------------------------------------------------------------

void TreeBuilder::in_body_characters(Token& token) {
  reconstruct_active_formatting();
  insert_character_data(token.data);
  if (!all_ws(token.data)) frameset_ok_ = false;
}

void TreeBuilder::mode_in_body(Token& token) {
  switch (token.type) {
    case Token::Type::kNullCharacter:
      error(ParseError::UnexpectedNullCharacter, token);
      return;  // ignored
    case Token::Type::kCharacters:
      in_body_characters(token);
      return;
    case Token::Type::kComment:
      insert_comment(token);
      return;
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kStartTag:
      in_body_start_tag(token);
      return;
    case Token::Type::kEndTag:
      in_body_end_tag(token);
      return;
    case Token::Type::kEof:
      if (!template_modes_.empty()) {
        process_by_mode(token, InsertionMode::kInTemplate);
        return;
      }
      stop_parsing(token);
      return;
  }
}

void TreeBuilder::in_body_start_tag(Token& token) {
  const std::string& name = token.name;

  if (name == "html") {
    error(ParseError::UnexpectedStartTag, token, name);
    if (stack_contains("template")) return;
    merge_attributes_into(open_elements_.empty() ? nullptr
                                                 : open_elements_.front(),
                          token);
    return;
  }
  if (name == "base" || name == "basefont" || name == "bgsound" ||
      name == "link") {
    insert_html_element(token);
    pop_open();
    acknowledge_self_closing(token);
    if (name == "base") handle_base_start_tag(token, source_head_open_);
    return;
  }
  if (name == "meta") {
    insert_html_element(token);
    pop_open();
    acknowledge_self_closing(token);
    handle_meta_position_check(token, source_head_open_);
    return;
  }
  if (name == "title") {
    generic_rcdata(token);
    return;
  }
  if (name == "noframes" || name == "style") {
    generic_raw_text(token);
    return;
  }
  if (name == "script") {
    Element* element = insert_html_element(token);
    if (current_node() != element) return;  // depth cap
    if (tokenizer_ != nullptr) {
      tokenizer_->set_state(TokenizerState::kScriptData);
    }
    original_mode_ = mode_;
    mode_ = InsertionMode::kText;
    return;
  }
  if (name == "template") {
    process_by_mode(token, InsertionMode::kInHead);
    return;
  }
  if (name == "body") {
    // HF3: a second <body> start tag is merged into the existing body
    // (spec 13.2.6.4.7), letting injections before/after the real body
    // overwrite or add attributes.  Only a second *literal* tag counts —
    // an explicit <body> merging into an implied one is the page's first.
    ++body_start_tokens_;
    if (body_start_tokens_ >= 2) {
      error(ParseError::MultipleBodyStartTags, token);
      observe(ObservationKind::kSecondBodyMerged, token);
    } else {
      error(ParseError::UnexpectedStartTag, token, name);
    }
    if (open_elements_.size() < 2 ||
        !open_elements_[1]->is_html("body") || stack_contains("template")) {
      return;
    }
    frameset_ok_ = false;
    merge_attributes_into(open_elements_[1], token);
    return;
  }
  if (name == "frameset") {
    error(ParseError::UnexpectedStartTag, token, name);
    if (open_elements_.size() < 2 || !open_elements_[1]->is_html("body") ||
        !frameset_ok_) {
      return;
    }
    Element* body = open_elements_[1];
    if (body->parent() != nullptr) body->parent()->remove_child(body);
    while (open_elements_.size() > 1) pop_open();
    insert_html_element(token);
    mode_ = InsertionMode::kInFrameset;
    return;
  }
  if (in_set(kBlockTags, name) && name != "p") {
    if (has_element_in_button_scope("p")) close_p_element();
    insert_html_element(token);
    return;
  }
  if (name == "p") {
    if (has_element_in_button_scope("p")) close_p_element();
    insert_html_element(token);
    return;
  }
  if (is_heading(name)) {
    if (has_element_in_button_scope("p")) close_p_element();
    if (current_node() != nullptr &&
        current_node()->ns() == Namespace::kHtml &&
        is_heading(current_node()->tag_name())) {
      error(ParseError::MisnestedTag, token, name);
      pop_open();
    }
    insert_html_element(token);
    return;
  }
  if (name == "pre" || name == "listing") {
    if (has_element_in_button_scope("p")) close_p_element();
    insert_html_element(token);
    ignore_next_lf_ = true;
    frameset_ok_ = false;
    return;
  }
  if (name == "form") {
    if (form_element_ != nullptr && !stack_contains("template")) {
      // DE4: the nested form is dropped entirely; an injected form swallows
      // the page's real one (paper section 3.2.2).
      error(ParseError::NestedFormStartTag, token);
      observe(ObservationKind::kNestedFormIgnored, token);
      return;
    }
    if (has_element_in_button_scope("p")) close_p_element();
    Element* form = insert_html_element(token);
    if (!stack_contains("template")) form_element_ = form;
    return;
  }
  if (name == "li") {
    frameset_ok_ = false;
    for (std::size_t i = open_elements_.size(); i > 0; --i) {
      Element* node = open_elements_[i - 1];
      if (node->is_html("li")) {
        generate_implied_end_tags("li");
        if (!current_node()->is_html("li")) {
          error(ParseError::MisnestedTag, token, name);
        }
        pop_until_inclusive("li");
        break;
      }
      if (node->ns() == Namespace::kHtml &&
          node->tag_name() != "address" && node->tag_name() != "div" &&
          node->tag_name() != "p" &&
          special_is(node)) {
        break;
      }
    }
    if (has_element_in_button_scope("p")) close_p_element();
    insert_html_element(token);
    return;
  }
  if (name == "dd" || name == "dt") {
    frameset_ok_ = false;
    for (std::size_t i = open_elements_.size(); i > 0; --i) {
      Element* node = open_elements_[i - 1];
      if (node->is_html("dd") || node->is_html("dt")) {
        generate_implied_end_tags(node->tag_name());
        if (current_node() != node) {
          error(ParseError::MisnestedTag, token, name);
        }
        pop_until_inclusive(node->tag_name());
        break;
      }
      if (node->ns() == Namespace::kHtml &&
          node->tag_name() != "address" && node->tag_name() != "div" &&
          node->tag_name() != "p" && special_is(node)) {
        break;
      }
    }
    if (has_element_in_button_scope("p")) close_p_element();
    insert_html_element(token);
    return;
  }
  if (name == "plaintext") {
    if (has_element_in_button_scope("p")) close_p_element();
    insert_html_element(token);
    if (tokenizer_ != nullptr) {
      tokenizer_->set_state(TokenizerState::kPlaintext);
    }
    return;
  }
  if (name == "button") {
    if (has_element_in_scope("button")) {
      error(ParseError::MisnestedTag, token, name);
      generate_implied_end_tags();
      pop_until_inclusive("button");
    }
    reconstruct_active_formatting();
    insert_html_element(token);
    frameset_ok_ = false;
    return;
  }
  if (name == "a") {
    if (Element* existing = formatting_element_after_marker("a")) {
      error(ParseError::MisnestedTag, token, name);
      Token end_a;
      end_a.type = Token::Type::kEndTag;
      end_a.name = "a";
      end_a.position = token.position;
      adoption_agency(end_a);
      remove_formatting_entry(existing);
      remove_from_stack(existing);
    }
    reconstruct_active_formatting();
    Element* element = insert_html_element(token);
    push_formatting(element, token);
    return;
  }
  if (in_set(kFormattingTags, name)) {
    reconstruct_active_formatting();
    Element* element = insert_html_element(token);
    push_formatting(element, token);
    return;
  }
  if (name == "nobr") {
    reconstruct_active_formatting();
    if (has_element_in_scope("nobr")) {
      error(ParseError::MisnestedTag, token, name);
      Token end_nobr;
      end_nobr.type = Token::Type::kEndTag;
      end_nobr.name = "nobr";
      end_nobr.position = token.position;
      adoption_agency(end_nobr);
      reconstruct_active_formatting();
    }
    Element* element = insert_html_element(token);
    push_formatting(element, token);
    return;
  }
  if (name == "applet" || name == "marquee" || name == "object") {
    reconstruct_active_formatting();
    insert_html_element(token);
    push_formatting_marker();
    frameset_ok_ = false;
    return;
  }
  if (name == "table") {
    if (!quirks_mode_ && has_element_in_button_scope("p")) close_p_element();
    insert_html_element(token);
    frameset_ok_ = false;
    mode_ = InsertionMode::kInTable;
    return;
  }
  if (name == "area" || name == "br" || name == "embed" || name == "img" ||
      name == "keygen" || name == "wbr") {
    reconstruct_active_formatting();
    insert_html_element(token);
    pop_open();
    acknowledge_self_closing(token);
    frameset_ok_ = false;
    return;
  }
  if (name == "input") {
    reconstruct_active_formatting();
    insert_html_element(token);
    pop_open();
    acknowledge_self_closing(token);
    const auto type = token.attribute("type");
    if (!type.has_value() || *type != "hidden") frameset_ok_ = false;
    return;
  }
  if (name == "param" || name == "source" || name == "track") {
    insert_html_element(token);
    pop_open();
    acknowledge_self_closing(token);
    return;
  }
  if (name == "hr") {
    if (has_element_in_button_scope("p")) close_p_element();
    insert_html_element(token);
    pop_open();
    acknowledge_self_closing(token);
    frameset_ok_ = false;
    return;
  }
  if (name == "image") {
    error(ParseError::UnexpectedStartTag, token, name);
    token.name = "img";
    in_body_start_tag(token);
    return;
  }
  if (name == "textarea") {
    Element* element = insert_html_element(token);
    if (current_node() != element) return;  // depth cap
    if (tokenizer_ != nullptr) tokenizer_->set_state(TokenizerState::kRcdata);
    ignore_next_lf_ = true;
    original_mode_ = mode_;
    frameset_ok_ = false;
    mode_ = InsertionMode::kText;
    return;
  }
  if (name == "xmp") {
    if (has_element_in_button_scope("p")) close_p_element();
    reconstruct_active_formatting();
    frameset_ok_ = false;
    generic_raw_text(token);
    return;
  }
  if (name == "iframe") {
    frameset_ok_ = false;
    generic_raw_text(token);
    return;
  }
  if (name == "noembed" || (name == "noscript" && scripting_)) {
    generic_raw_text(token);
    return;
  }
  if (name == "select") {
    reconstruct_active_formatting();
    insert_html_element(token);
    frameset_ok_ = false;
    if (mode_ == InsertionMode::kInTable ||
        mode_ == InsertionMode::kInCaption ||
        mode_ == InsertionMode::kInTableBody ||
        mode_ == InsertionMode::kInRow || mode_ == InsertionMode::kInCell) {
      mode_ = InsertionMode::kInSelectInTable;
    } else {
      mode_ = InsertionMode::kInSelect;
    }
    return;
  }
  if (name == "optgroup" || name == "option") {
    if (current_node() != nullptr && current_node()->is_html("option")) {
      pop_open();
    }
    reconstruct_active_formatting();
    insert_html_element(token);
    return;
  }
  if (name == "rb" || name == "rtc") {
    if (has_element_in_scope("ruby")) {
      generate_implied_end_tags();
      if (!current_node()->is_html("ruby")) {
        error(ParseError::MisnestedTag, token, name);
      }
    }
    insert_html_element(token);
    return;
  }
  if (name == "rp" || name == "rt") {
    if (has_element_in_scope("ruby")) {
      generate_implied_end_tags("rtc");
      if (!current_node()->is_html("ruby") &&
          !current_node()->is_html("rtc")) {
        error(ParseError::MisnestedTag, token, name);
      }
    }
    insert_html_element(token);
    return;
  }
  if (name == "math") {
    reconstruct_active_formatting();
    insert_foreign_element(token, Namespace::kMathMl);
    if (token.self_closing) {
      pop_open();
      acknowledge_self_closing(token);
    }
    return;
  }
  if (name == "svg") {
    reconstruct_active_formatting();
    insert_foreign_element(token, Namespace::kSvg);
    if (token.self_closing) {
      pop_open();
      acknowledge_self_closing(token);
    }
    return;
  }
  {
    static const TagSet kIgnored = {"caption", "col",   "colgroup", "frame",
                                    "head",    "tbody", "td",       "tfoot",
                                    "th",      "thead", "tr"};
    if (in_set(kIgnored, name)) {
      error(ParseError::UnexpectedStartTag, token, name);
      return;
    }
  }
  // Any other start tag.  (An unacknowledged self-closing flag is
  // reported centrally in process_token.)
  reconstruct_active_formatting();
  insert_html_element(token);
}

void TreeBuilder::in_body_end_tag(Token& token) {
  const std::string& name = token.name;

  if (name == "template") {
    process_by_mode(token, InsertionMode::kInHead);
    return;
  }
  if (name == "body" || name == "html") {
    if (!has_element_in_scope("body")) {
      error(ParseError::UnexpectedEndTag, token, name);
      return;
    }
    mode_ = InsertionMode::kAfterBody;
    if (name == "html") dispatch(token);
    return;
  }
  {
    static const TagSet kBlockEnders = {
        "address", "article", "aside",   "blockquote", "button", "center",
        "details", "dialog",  "dir",     "div",        "dl",     "fieldset",
        "figcaption", "figure", "footer", "header",    "hgroup", "listing",
        "main",    "menu",    "nav",     "ol",         "pre",    "section",
        "summary", "ul"};
    if (in_set(kBlockEnders, name)) {
      if (!has_element_in_scope(name)) {
        error(ParseError::UnexpectedEndTag, token, name);
        return;
      }
      generate_implied_end_tags();
      if (current_node() == nullptr || !current_node()->is_html(name)) {
        error(ParseError::MisnestedTag, token, name);
      }
      pop_until_inclusive(name);
      return;
    }
  }
  if (name == "form") {
    if (!stack_contains("template")) {
      Element* form = form_element_;
      form_element_ = nullptr;
      if (form == nullptr || !has_element_in_scope(form)) {
        error(ParseError::UnexpectedEndTag, token, name);
        return;
      }
      generate_implied_end_tags();
      if (current_node() != form) {
        error(ParseError::MisnestedTag, token, name);
      }
      remove_from_stack(form);
      return;
    }
    if (!has_element_in_scope("form")) {
      error(ParseError::UnexpectedEndTag, token, name);
      return;
    }
    generate_implied_end_tags();
    if (current_node() == nullptr || !current_node()->is_html("form")) {
      error(ParseError::MisnestedTag, token, name);
    }
    pop_until_inclusive("form");
    return;
  }
  if (name == "p") {
    if (!has_element_in_button_scope("p")) {
      error(ParseError::UnexpectedEndTag, token, name);
      insert_html_element(synthetic_start_tag("p", token.position));
    }
    generate_implied_end_tags("p");
    if (current_node() == nullptr || !current_node()->is_html("p")) {
      error(ParseError::MisnestedTag, token, name);
    }
    pop_until_inclusive("p");
    return;
  }
  if (name == "li") {
    if (!has_element_in_list_item_scope("li")) {
      error(ParseError::UnexpectedEndTag, token, name);
      return;
    }
    generate_implied_end_tags("li");
    if (current_node() == nullptr || !current_node()->is_html("li")) {
      error(ParseError::MisnestedTag, token, name);
    }
    pop_until_inclusive("li");
    return;
  }
  if (name == "dd" || name == "dt") {
    if (!has_element_in_scope(name)) {
      error(ParseError::UnexpectedEndTag, token, name);
      return;
    }
    generate_implied_end_tags(name);
    if (current_node() == nullptr || !current_node()->is_html(name)) {
      error(ParseError::MisnestedTag, token, name);
    }
    pop_until_inclusive(name);
    return;
  }
  if (is_heading(name)) {
    const bool any_heading_in_scope =
        has_element_in_scope("h1") || has_element_in_scope("h2") ||
        has_element_in_scope("h3") || has_element_in_scope("h4") ||
        has_element_in_scope("h5") || has_element_in_scope("h6");
    if (!any_heading_in_scope) {
      error(ParseError::UnexpectedEndTag, token, name);
      return;
    }
    generate_implied_end_tags();
    if (current_node() == nullptr || !current_node()->is_html(name)) {
      error(ParseError::MisnestedTag, token, name);
    }
    while (!open_elements_.empty()) {
      Element* top = open_elements_.back();
      open_elements_.pop_back();
      if (top->ns() == Namespace::kHtml && is_heading(top->tag_name())) {
        break;
      }
    }
    return;
  }
  if (name == "a" || name == "nobr" || in_set(kFormattingTags, name)) {
    if (!adoption_agency(token)) {
      in_body_any_other_end_tag(token);
    }
    return;
  }
  if (name == "applet" || name == "marquee" || name == "object") {
    if (!has_element_in_scope(name)) {
      error(ParseError::UnexpectedEndTag, token, name);
      return;
    }
    generate_implied_end_tags();
    if (current_node() == nullptr || !current_node()->is_html(name)) {
      error(ParseError::MisnestedTag, token, name);
    }
    pop_until_inclusive(name);
    clear_formatting_to_marker();
    return;
  }
  if (name == "br") {
    error(ParseError::UnexpectedEndTag, token, name);
    Token br = synthetic_start_tag("br", token.position);
    in_body_start_tag(br);
    return;
  }
  if (name == "svg" || name == "math") {
    // HF5_1: an </svg> or </math> in HTML content with no matching open
    // foreign root is silently dropped — the classic namespace-confusion
    // gadget.
    bool open_anywhere = false;
    for (const Element* e : open_elements_) {
      if (e->tag_name() == name && e->ns() != Namespace::kHtml) {
        open_anywhere = true;
        break;
      }
    }
    if (!open_anywhere) {
      error(ParseError::StrayForeignEndTag, token, name);
      observe(ObservationKind::kStrayForeignEndTag, token, name);
      return;
    }
    // Fall through to generic handling below.
  }
  in_body_any_other_end_tag(token);
}

void TreeBuilder::in_body_any_other_end_tag(Token& token) {
  for (std::size_t i = open_elements_.size(); i > 0; --i) {
    Element* node = open_elements_[i - 1];
    if (node->tag_name() == token.name) {
      generate_implied_end_tags(token.name);
      if (node != current_node()) {
        error(ParseError::MisnestedTag, token, token.name);
      }
      while (!open_elements_.empty()) {
        Element* top = open_elements_.back();
        open_elements_.pop_back();
        if (top == node) return;
      }
      return;
    }
    if (special_is(node)) {
      error(ParseError::UnexpectedEndTag, token, token.name);
      return;
    }
  }
}

// --- tables --------------------------------------------------------------------

void TreeBuilder::mode_in_table(Token& token) {
  switch (token.type) {
    case Token::Type::kCharacters:
    case Token::Type::kNullCharacter: {
      const Element* current = current_node();
      static const TagSet kTableContext = {"table", "tbody", "tfoot", "thead",
                                           "tr"};
      if (current != nullptr && current->ns() == Namespace::kHtml &&
          in_set(kTableContext, current->tag_name())) {
        pending_table_text_.clear();
        pending_table_text_has_nonspace_ = false;
        pending_table_text_position_ = token.position;
        original_mode_ = mode_;
        mode_ = InsertionMode::kInTableText;
        dispatch(token);
        return;
      }
      break;  // anything else (foster)
    }
    case Token::Type::kComment:
      insert_comment(token);
      return;
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kStartTag: {
      const std::string& name = token.name;
      if (name == "caption") {
        clear_stack_to_table_context();
        push_formatting_marker();
        insert_html_element(token);
        mode_ = InsertionMode::kInCaption;
        return;
      }
      if (name == "colgroup") {
        clear_stack_to_table_context();
        insert_html_element(token);
        mode_ = InsertionMode::kInColumnGroup;
        return;
      }
      if (name == "col") {
        clear_stack_to_table_context();
        insert_html_element(synthetic_start_tag("colgroup", token.position));
        mode_ = InsertionMode::kInColumnGroup;
        dispatch(token);
        return;
      }
      if (name == "tbody" || name == "tfoot" || name == "thead") {
        clear_stack_to_table_context();
        insert_html_element(token);
        mode_ = InsertionMode::kInTableBody;
        return;
      }
      if (name == "td" || name == "th" || name == "tr") {
        clear_stack_to_table_context();
        insert_html_element(synthetic_start_tag("tbody", token.position));
        mode_ = InsertionMode::kInTableBody;
        dispatch(token);
        return;
      }
      if (name == "table") {
        error(ParseError::UnexpectedStartTag, token, name);
        if (!has_element_in_table_scope("table")) return;
        pop_until_inclusive("table");
        reset_insertion_mode();
        dispatch(token);
        return;
      }
      if (name == "style" || name == "script" || name == "template") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      if (name == "input") {
        const auto type = token.attribute("type");
        if (type.has_value() && *type == "hidden") {
          error(ParseError::UnexpectedStartTag, token, name);
          insert_html_element(token);
          pop_open();
          acknowledge_self_closing(token);
          return;
        }
        break;  // anything else
      }
      if (name == "form") {
        error(ParseError::UnexpectedStartTag, token, name);
        if (stack_contains("template") || form_element_ != nullptr) return;
        form_element_ = insert_html_element(token);
        pop_open();
        return;
      }
      break;  // anything else
    }
    case Token::Type::kEndTag: {
      const std::string& name = token.name;
      if (name == "table") {
        if (!has_element_in_table_scope("table")) {
          error(ParseError::UnexpectedEndTag, token, name);
          return;
        }
        pop_until_inclusive("table");
        reset_insertion_mode();
        return;
      }
      if (name == "template") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      static const TagSet kIgnored = {"body", "caption", "col", "colgroup",
                                      "html", "tbody",   "td",  "tfoot",
                                      "th",   "thead",   "tr"};
      if (in_set(kIgnored, name)) {
        error(ParseError::UnexpectedEndTag, token, name);
        return;
      }
      break;  // anything else
    }
    case Token::Type::kEof:
      process_by_mode(token, InsertionMode::kInBody);
      return;
  }
  // Anything else: foster parenting — the HF4 repair the paper measures.
  foster_parenting_ = true;
  process_by_mode(token, InsertionMode::kInBody);
  foster_parenting_ = false;
}

void TreeBuilder::mode_in_table_text(Token& token) {
  if (token.type == Token::Type::kNullCharacter) {
    error(ParseError::UnexpectedNullCharacter, token);
    return;
  }
  if (token.type == Token::Type::kCharacters) {
    pending_table_text_.append(token.data);
    if (!all_ws(token.data)) pending_table_text_has_nonspace_ = true;
    return;
  }
  // Flush pending characters, then reprocess the current token.
  if (!pending_table_text_.empty()) {
    if (pending_table_text_has_nonspace_) {
      errors_.push_back({ParseError::TreeConstructionGeneric,
                         pending_table_text_position_, "#table-text"});
      foster_parenting_ = true;
      reconstruct_active_formatting();
      insert_character_data(pending_table_text_);
      foster_parenting_ = false;
      frameset_ok_ = false;
    } else {
      insert_character_data(pending_table_text_);
    }
    pending_table_text_.clear();
    pending_table_text_has_nonspace_ = false;
  }
  mode_ = original_mode_;
  dispatch(token);
}

void TreeBuilder::mode_in_caption(Token& token) {
  const auto close_caption = [this, &token]() -> bool {
    if (!has_element_in_table_scope("caption")) {
      error(ParseError::UnexpectedEndTag, token, token.name);
      return false;
    }
    generate_implied_end_tags();
    if (current_node() == nullptr || !current_node()->is_html("caption")) {
      error(ParseError::MisnestedTag, token, token.name);
    }
    pop_until_inclusive("caption");
    clear_formatting_to_marker();
    mode_ = InsertionMode::kInTable;
    return true;
  };

  if (token.type == Token::Type::kEndTag && token.name == "caption") {
    close_caption();
    return;
  }
  static const TagSet kTableParts = {"caption", "col",   "colgroup", "tbody",
                                     "td",      "tfoot", "th",       "thead",
                                     "tr"};
  if ((token.type == Token::Type::kStartTag &&
       in_set(kTableParts, token.name)) ||
      (token.type == Token::Type::kEndTag && token.name == "table")) {
    if (close_caption()) dispatch(token);
    return;
  }
  if (token.type == Token::Type::kEndTag) {
    static const TagSet kIgnored = {"body", "col",   "colgroup", "html",
                                    "tbody", "td",   "tfoot",    "th",
                                    "thead", "tr"};
    if (in_set(kIgnored, token.name)) {
      error(ParseError::UnexpectedEndTag, token, token.name);
      return;
    }
  }
  process_by_mode(token, InsertionMode::kInBody);
}

void TreeBuilder::mode_in_column_group(Token& token) {
  switch (token.type) {
    case Token::Type::kCharacters: {
      const std::size_t ws = leading_ws(token.data);
      if (ws > 0) insert_character_data(std::string_view(token.data).substr(0, ws));
      if (ws == token.data.size()) return;
      token.data.erase(0, ws);
      break;  // anything else
    }
    case Token::Type::kComment:
      insert_comment(token);
      return;
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kStartTag:
      if (token.name == "html") {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      if (token.name == "col") {
        insert_html_element(token);
        pop_open();
        acknowledge_self_closing(token);
        return;
      }
      if (token.name == "template") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      break;
    case Token::Type::kEndTag:
      if (token.name == "colgroup") {
        if (current_node() == nullptr ||
            !current_node()->is_html("colgroup")) {
          error(ParseError::UnexpectedEndTag, token, token.name);
          return;
        }
        pop_open();
        mode_ = InsertionMode::kInTable;
        return;
      }
      if (token.name == "col") {
        error(ParseError::UnexpectedEndTag, token, token.name);
        return;
      }
      if (token.name == "template") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      break;
    case Token::Type::kEof:
      process_by_mode(token, InsertionMode::kInBody);
      return;
    default:
      break;
  }
  if (current_node() == nullptr || !current_node()->is_html("colgroup")) {
    error(ParseError::TreeConstructionGeneric, token, token.name);
    return;
  }
  pop_open();
  mode_ = InsertionMode::kInTable;
  dispatch(token);
}

void TreeBuilder::mode_in_table_body(Token& token) {
  if (token.type == Token::Type::kStartTag) {
    const std::string& name = token.name;
    if (name == "tr") {
      clear_stack_to_table_body_context();
      insert_html_element(token);
      mode_ = InsertionMode::kInRow;
      return;
    }
    if (name == "th" || name == "td") {
      error(ParseError::UnexpectedStartTag, token, name);
      clear_stack_to_table_body_context();
      insert_html_element(synthetic_start_tag("tr", token.position));
      mode_ = InsertionMode::kInRow;
      dispatch(token);
      return;
    }
    static const TagSet kSections = {"caption", "col", "colgroup", "tbody",
                                     "tfoot",   "thead"};
    if (in_set(kSections, name)) {
      if (!has_element_in_table_scope("tbody") &&
          !has_element_in_table_scope("thead") &&
          !has_element_in_table_scope("tfoot")) {
        error(ParseError::UnexpectedStartTag, token, name);
        return;
      }
      clear_stack_to_table_body_context();
      pop_open();
      mode_ = InsertionMode::kInTable;
      dispatch(token);
      return;
    }
  }
  if (token.type == Token::Type::kEndTag) {
    const std::string& name = token.name;
    if (name == "tbody" || name == "tfoot" || name == "thead") {
      if (!has_element_in_table_scope(name)) {
        error(ParseError::UnexpectedEndTag, token, name);
        return;
      }
      clear_stack_to_table_body_context();
      pop_open();
      mode_ = InsertionMode::kInTable;
      return;
    }
    if (name == "table") {
      if (!has_element_in_table_scope("tbody") &&
          !has_element_in_table_scope("thead") &&
          !has_element_in_table_scope("tfoot")) {
        error(ParseError::UnexpectedEndTag, token, name);
        return;
      }
      clear_stack_to_table_body_context();
      pop_open();
      mode_ = InsertionMode::kInTable;
      dispatch(token);
      return;
    }
    static const TagSet kIgnored = {"body", "caption", "col", "colgroup",
                                    "html", "td",      "th",  "tr"};
    if (in_set(kIgnored, name)) {
      error(ParseError::UnexpectedEndTag, token, name);
      return;
    }
  }
  process_by_mode(token, InsertionMode::kInTable);
}

void TreeBuilder::mode_in_row(Token& token) {
  if (token.type == Token::Type::kStartTag) {
    const std::string& name = token.name;
    if (name == "th" || name == "td") {
      clear_stack_to_table_row_context();
      insert_html_element(token);
      mode_ = InsertionMode::kInCell;
      push_formatting_marker();
      return;
    }
    static const TagSet kParts = {"caption", "col",   "colgroup", "tbody",
                                  "tfoot",   "thead", "tr"};
    if (in_set(kParts, name)) {
      if (!has_element_in_table_scope("tr")) {
        error(ParseError::UnexpectedStartTag, token, name);
        return;
      }
      clear_stack_to_table_row_context();
      pop_open();
      mode_ = InsertionMode::kInTableBody;
      dispatch(token);
      return;
    }
  }
  if (token.type == Token::Type::kEndTag) {
    const std::string& name = token.name;
    if (name == "tr") {
      if (!has_element_in_table_scope("tr")) {
        error(ParseError::UnexpectedEndTag, token, name);
        return;
      }
      clear_stack_to_table_row_context();
      pop_open();
      mode_ = InsertionMode::kInTableBody;
      return;
    }
    if (name == "table") {
      if (!has_element_in_table_scope("tr")) {
        error(ParseError::UnexpectedEndTag, token, name);
        return;
      }
      clear_stack_to_table_row_context();
      pop_open();
      mode_ = InsertionMode::kInTableBody;
      dispatch(token);
      return;
    }
    if (name == "tbody" || name == "tfoot" || name == "thead") {
      if (!has_element_in_table_scope(name)) {
        error(ParseError::UnexpectedEndTag, token, name);
        return;
      }
      if (!has_element_in_table_scope("tr")) return;
      clear_stack_to_table_row_context();
      pop_open();
      mode_ = InsertionMode::kInTableBody;
      dispatch(token);
      return;
    }
    static const TagSet kIgnored = {"body", "caption", "col", "colgroup",
                                    "html", "td",      "th"};
    if (in_set(kIgnored, name)) {
      error(ParseError::UnexpectedEndTag, token, name);
      return;
    }
  }
  process_by_mode(token, InsertionMode::kInTable);
}

void TreeBuilder::close_cell() {
  generate_implied_end_tags();
  if (current_node() != nullptr && !current_node()->is_html("td") &&
      !current_node()->is_html("th")) {
    errors_.push_back({ParseError::MisnestedTag,
                       current_node()->start_position(),
                       std::string(current_node()->tag_name())});
  }
  while (!open_elements_.empty()) {
    Element* top = open_elements_.back();
    open_elements_.pop_back();
    if (top->is_html("td") || top->is_html("th")) break;
  }
  clear_formatting_to_marker();
  mode_ = InsertionMode::kInRow;
}

void TreeBuilder::mode_in_cell(Token& token) {
  if (token.type == Token::Type::kEndTag) {
    const std::string& name = token.name;
    if (name == "td" || name == "th") {
      if (!has_element_in_table_scope(name)) {
        error(ParseError::UnexpectedEndTag, token, name);
        return;
      }
      generate_implied_end_tags();
      if (current_node() == nullptr || !current_node()->is_html(name)) {
        error(ParseError::MisnestedTag, token, name);
      }
      pop_until_inclusive(name);
      clear_formatting_to_marker();
      mode_ = InsertionMode::kInRow;
      return;
    }
    static const TagSet kIgnored = {"body", "caption", "col", "colgroup",
                                    "html"};
    if (in_set(kIgnored, name)) {
      error(ParseError::UnexpectedEndTag, token, name);
      return;
    }
    static const TagSet kTableScoped = {"table", "tbody", "tfoot", "thead",
                                        "tr"};
    if (in_set(kTableScoped, name)) {
      if (!has_element_in_table_scope(name)) {
        error(ParseError::UnexpectedEndTag, token, name);
        return;
      }
      close_cell();
      dispatch(token);
      return;
    }
  }
  if (token.type == Token::Type::kStartTag) {
    static const TagSet kParts = {"caption", "col",   "colgroup", "tbody",
                                  "td",      "tfoot", "th",       "thead",
                                  "tr"};
    if (in_set(kParts, token.name)) {
      if (!has_element_in_table_scope("td") &&
          !has_element_in_table_scope("th")) {
        error(ParseError::UnexpectedStartTag, token, token.name);
        return;
      }
      close_cell();
      dispatch(token);
      return;
    }
  }
  process_by_mode(token, InsertionMode::kInBody);
}

// --- select --------------------------------------------------------------------

void TreeBuilder::mode_in_select(Token& token) {
  switch (token.type) {
    case Token::Type::kNullCharacter:
      error(ParseError::UnexpectedNullCharacter, token);
      return;
    case Token::Type::kCharacters:
      insert_character_data(token.data);
      return;
    case Token::Type::kComment:
      insert_comment(token);
      return;
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kStartTag: {
      const std::string& name = token.name;
      if (name == "html") {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      if (name == "option") {
        if (current_node() != nullptr && current_node()->is_html("option")) {
          pop_open();
        }
        insert_html_element(token);
        return;
      }
      if (name == "optgroup") {
        if (current_node() != nullptr && current_node()->is_html("option")) {
          pop_open();
        }
        if (current_node() != nullptr &&
            current_node()->is_html("optgroup")) {
          pop_open();
        }
        insert_html_element(token);
        return;
      }
      if (name == "select") {
        error(ParseError::UnexpectedStartTag, token, name);
        if (!has_element_in_select_scope("select")) return;
        pop_until_inclusive("select");
        reset_insertion_mode();
        return;
      }
      if (name == "input" || name == "keygen" || name == "textarea") {
        error(ParseError::UnexpectedStartTag, token, name);
        if (!has_element_in_select_scope("select")) return;
        pop_until_inclusive("select");
        reset_insertion_mode();
        dispatch(token);
        return;
      }
      if (name == "script" || name == "template") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      error(ParseError::UnexpectedStartTag, token, name);
      return;
    }
    case Token::Type::kEndTag: {
      const std::string& name = token.name;
      if (name == "optgroup") {
        if (current_node() != nullptr && current_node()->is_html("option") &&
            open_elements_.size() >= 2 &&
            open_elements_[open_elements_.size() - 2]->is_html("optgroup")) {
          pop_open();
        }
        if (current_node() != nullptr &&
            current_node()->is_html("optgroup")) {
          pop_open();
        } else {
          error(ParseError::UnexpectedEndTag, token, name);
        }
        return;
      }
      if (name == "option") {
        if (current_node() != nullptr && current_node()->is_html("option")) {
          pop_open();
        } else {
          error(ParseError::UnexpectedEndTag, token, name);
        }
        return;
      }
      if (name == "select") {
        if (!has_element_in_select_scope("select")) {
          error(ParseError::UnexpectedEndTag, token, name);
          return;
        }
        pop_until_inclusive("select");
        reset_insertion_mode();
        return;
      }
      if (name == "template") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      error(ParseError::UnexpectedEndTag, token, name);
      return;
    }
    case Token::Type::kEof:
      process_by_mode(token, InsertionMode::kInBody);
      return;
  }
}

void TreeBuilder::mode_in_select_in_table(Token& token) {
  static const TagSet kTableTags = {"caption", "table", "tbody", "tfoot",
                                    "thead",   "tr",    "td",    "th"};
  if (token.type == Token::Type::kStartTag && in_set(kTableTags, token.name)) {
    error(ParseError::UnexpectedStartTag, token, token.name);
    pop_until_inclusive("select");
    reset_insertion_mode();
    dispatch(token);
    return;
  }
  if (token.type == Token::Type::kEndTag && in_set(kTableTags, token.name)) {
    error(ParseError::UnexpectedEndTag, token, token.name);
    if (!has_element_in_table_scope(token.name)) return;
    pop_until_inclusive("select");
    reset_insertion_mode();
    dispatch(token);
    return;
  }
  mode_in_select(token);
}

// --- template -------------------------------------------------------------------

void TreeBuilder::mode_in_template(Token& token) {
  switch (token.type) {
    case Token::Type::kCharacters:
    case Token::Type::kNullCharacter:
    case Token::Type::kComment:
    case Token::Type::kDoctype:
      process_by_mode(token, InsertionMode::kInBody);
      return;
    case Token::Type::kStartTag: {
      const std::string& name = token.name;
      static const TagSet kHeadish = {"base",  "basefont", "bgsound",
                                      "link",  "meta",     "noframes",
                                      "script", "style",   "template",
                                      "title"};
      if (in_set(kHeadish, name)) {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      InsertionMode next = InsertionMode::kInBody;
      if (name == "caption" || name == "colgroup" || name == "tbody" ||
          name == "tfoot" || name == "thead") {
        next = InsertionMode::kInTable;
      } else if (name == "col") {
        next = InsertionMode::kInColumnGroup;
      } else if (name == "tr") {
        next = InsertionMode::kInTableBody;
      } else if (name == "td" || name == "th") {
        next = InsertionMode::kInRow;
      }
      if (!template_modes_.empty()) template_modes_.pop_back();
      template_modes_.push_back(next);
      mode_ = next;
      dispatch(token);
      return;
    }
    case Token::Type::kEndTag:
      if (token.name == "template") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      error(ParseError::UnexpectedEndTag, token, token.name);
      return;
    case Token::Type::kEof:
      if (!stack_contains("template")) {
        stop_parsing(token);
        return;
      }
      error(ParseError::OpenElementsAtEof, token, "template");
      pop_until_inclusive("template");
      clear_formatting_to_marker();
      if (!template_modes_.empty()) template_modes_.pop_back();
      reset_insertion_mode();
      dispatch(token);
      return;
  }
}

// --- foreign content --------------------------------------------------------------

void TreeBuilder::process_in_foreign_content(Token& token) {
  switch (token.type) {
    case Token::Type::kNullCharacter:
      error(ParseError::UnexpectedNullCharacter, token);
      insert_character_data("\xEF\xBF\xBD");
      return;
    case Token::Type::kCharacters:
      insert_character_data(token.data);
      if (!all_ws(token.data)) frameset_ok_ = false;
      return;
    case Token::Type::kComment:
      insert_comment(token);
      return;
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kStartTag: {
      if (foreign_breakout_check(token)) {
        // HF5: an HTML breakout element silently closes the foreign
        // context — the namespace-confusion gadget behind the DOMPurify
        // bypass (paper Figure 1).
        const Element* current = current_node();
        const bool svg = current != nullptr && current->ns() == Namespace::kSvg;
        error(ParseError::UnexpectedForeignBreakout, token, token.name);
        observe(svg ? ObservationKind::kForeignBreakoutSvg
                    : ObservationKind::kForeignBreakoutMath,
                token, token.name);
        while (current_node() != nullptr) {
          const Element* node = current_node();
          if (node->ns() == Namespace::kHtml) break;
          if (is_mathml_text_ip(node) || is_html_ip(node)) break;
          pop_open();
        }
        dispatch(token);
        return;
      }
      const Element* adjusted = adjusted_current_node();
      const Namespace ns = adjusted != nullptr ? adjusted->ns()
                                               : Namespace::kHtml;
      insert_foreign_element(token, ns);
      if (token.self_closing) {
        pop_open();
        acknowledge_self_closing(token);
      }
      return;
    }
    case Token::Type::kEndTag: {
      if (token.name == "br" || token.name == "p") {
        // Spec 13.2.6.5 lists </br> and </p> with the breakout start tags.
        const Element* current = current_node();
        const bool svg =
            current != nullptr && current->ns() == Namespace::kSvg;
        error(ParseError::UnexpectedForeignBreakout, token, token.name);
        observe(svg ? ObservationKind::kForeignBreakoutSvg
                    : ObservationKind::kForeignBreakoutMath,
                token, token.name);
        while (current_node() != nullptr) {
          const Element* node = current_node();
          if (node->ns() == Namespace::kHtml) break;
          if (is_mathml_text_ip(node) || is_html_ip(node)) break;
          pop_open();
        }
        dispatch(token);
        return;
      }
      Element* node = current_node();
      if (node == nullptr) return;
      std::string lowered(node->tag_name());
      std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (lowered != token.name) {
        error(ParseError::MisnestedTag, token, token.name);
        observe(node->ns() == Namespace::kSvg
                    ? ObservationKind::kForeignErrorSvg
                    : ObservationKind::kForeignErrorMath,
                token, token.name);
      }
      for (std::size_t i = open_elements_.size(); i > 0; --i) {
        Element* candidate = open_elements_[i - 1];
        if (i != open_elements_.size() &&
            candidate->ns() == Namespace::kHtml) {
          process_by_mode(token, mode_);
          return;
        }
        std::string candidate_lower(candidate->tag_name());
        std::transform(candidate_lower.begin(), candidate_lower.end(),
                       candidate_lower.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (candidate_lower == token.name) {
          while (!open_elements_.empty()) {
            Element* top = open_elements_.back();
            open_elements_.pop_back();
            if (top == candidate) return;
          }
          return;
        }
      }
      return;
    }
    case Token::Type::kEof:
      return;  // unreachable: dispatch never routes EOF here
  }
}

}  // namespace hv::html
