#include "html/observations.h"

#include <array>

namespace hv::html {
namespace {

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(ObservationKind::kCount)>
    kNames = {
        "head-closed-by-stray-element",
        "head-implicit-with-content",
        "head-content-after-head",
        "body-implied-by-content",
        "second-body-merged",
        "foster-parented",
        "stray-foreign-end-tag",
        "foreign-breakout-svg",
        "foreign-breakout-math",
        "foreign-error-svg",
        "foreign-error-math",
        "meta-http-equiv-outside-head",
        "base-outside-head",
        "second-base",
        "base-after-url-use",
        "nested-form-ignored",
        "textarea-open-at-eof",
        "select-open-at-eof",
        "elements-open-at-eof",
};

}  // namespace

std::string_view to_string(ObservationKind kind) noexcept {
  const auto index = static_cast<std::size_t>(kind);
  if (index >= kNames.size()) return "unknown-observation";
  return kNames[index];
}

}  // namespace hv::html
