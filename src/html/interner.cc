#include "html/interner.h"

#include <array>

#include "obs/prof.h"

namespace hv::html {
namespace {

// Every entry is a string literal, so the views handed out for well-known
// names point at static storage and outlive any document.  The table
// covers the HTML element vocabulary (WHATWG section index), the SVG
// camelCase names the tree builder's case adjustment can produce, the
// MathML text-integration names, and the attribute names that dominate
// crawled markup.  Missing a name here costs one per-document copy, never
// correctness.
constexpr std::array kWellKnown = {
    // HTML elements.
    "a", "abbr", "address", "area", "article", "aside", "audio", "b",
    "base", "bdi", "bdo", "blockquote", "body", "br", "button", "canvas",
    "caption", "center", "cite", "code", "col", "colgroup", "data",
    "datalist", "dd", "del", "details", "dfn", "dialog", "dir", "div",
    "dl", "dt", "em", "embed", "fieldset", "figcaption", "figure", "font",
    "footer", "form", "frame", "frameset", "h1", "h2", "h3", "h4", "h5",
    "h6", "head", "header", "hgroup", "hr", "html", "i", "iframe", "img",
    "input", "ins", "kbd", "label", "legend", "li", "link", "main", "map",
    "mark", "marquee", "menu", "meta", "meter", "nav", "nobr", "noembed",
    "noframes", "noscript", "object", "ol", "optgroup", "option", "output",
    "p", "param", "picture", "plaintext", "pre", "progress", "q", "rb",
    "rp", "rt", "rtc", "ruby", "s", "samp", "script", "search", "section",
    "select", "slot", "small", "source", "span", "strike", "strong",
    "style", "sub", "summary", "sup", "table", "tbody", "td", "template",
    "textarea", "tfoot", "th", "thead", "time", "title", "tr", "track",
    "tt", "u", "ul", "var", "video", "wbr", "xmp",
    // SVG elements (lowercase plus the adjusted camelCase spellings).
    "svg", "g", "defs", "desc", "ellipse", "circle", "rect", "line",
    "polyline", "polygon", "path", "text", "tspan", "image", "use",
    "switch", "symbol", "marker", "mask", "metadata", "pattern", "stop",
    "view", "filter", "animate", "set", "altGlyph", "altGlyphDef",
    "altGlyphItem", "animateColor", "animateMotion", "animateTransform",
    "clipPath", "feBlend", "feColorMatrix", "feComponentTransfer",
    "feComposite", "feConvolveMatrix", "feDiffuseLighting",
    "feDisplacementMap", "feDistantLight", "feDropShadow", "feFlood",
    "feFuncA", "feFuncB", "feFuncG", "feFuncR", "feGaussianBlur",
    "feImage", "feMerge", "feMergeNode", "feMorphology", "feOffset",
    "fePointLight", "feSpecularLighting", "feSpotLight", "feTile",
    "feTurbulence", "foreignObject", "glyphRef", "linearGradient",
    "radialGradient", "textPath",
    // MathML elements.
    "math", "mi", "mo", "mn", "ms", "mtext", "mrow", "mfrac", "msqrt",
    "msub", "msup", "msubsup", "munder", "mover", "munderover", "mtable",
    "mtr", "mtd", "mspace", "mstyle", "merror", "mpadded", "mphantom",
    "semantics", "annotation", "annotation-xml", "mglyph", "malignmark",
    // Common attribute names (plus the adjusted foreign spellings).
    "accept", "action", "align", "alt", "aria-hidden", "aria-label",
    "async", "autocomplete", "autofocus", "autoplay", "background",
    "border", "charset", "checked", "class", "color", "cols", "colspan",
    "content", "controls", "coords", "crossorigin", "d", "data-id",
    "datetime", "defer", "definitionURL", "disabled", "download",
    "enctype", "fill", "for", "height", "hidden", "href", "hreflang",
    "http-equiv", "id", "integrity", "itemprop", "itemscope", "itemtype",
    "lang", "loading", "loop", "max", "maxlength", "media", "method",
    "min", "multiple", "muted", "name", "nonce", "novalidate", "onclick",
    "onerror", "onload", "open", "pattern", "ping", "placeholder",
    "poster", "preload", "preserveAspectRatio", "property", "readonly",
    "referrerpolicy", "rel", "required", "reversed", "role", "rows",
    "rowspan", "sandbox", "scope", "selected", "shape", "size", "sizes",
    "slot", "span", "spellcheck", "src", "srcdoc", "srclang", "srcset",
    "start", "step", "stroke", "stroke-width", "style", "tabindex",
    "target", "title", "transform", "translate", "type", "usemap",
    "value", "viewBox", "width", "wrap", "xmlns",
    // Foreign camelCase attributes the tree builder adjusts.
    "gradientUnits", "gradientTransform", "patternUnits", "clipPathUnits",
};

const std::unordered_set<std::string_view>& well_known_table() {
  static const std::unordered_set<std::string_view> table(kWellKnown.begin(),
                                                          kWellKnown.end());
  return table;
}

}  // namespace

std::string_view well_known_name(std::string_view name) noexcept {
  const auto& table = well_known_table();
  const auto it = table.find(name);
  return it == table.end() ? std::string_view{} : *it;
}

std::string_view NameInterner::intern_local(std::string_view name) {
  if (const auto it = local_.find(name); it != local_.end()) return *it;
  storage_.emplace_back(name);
  const std::string_view view = storage_.back();
  local_.insert(view);
  local_bytes_ += view.size();
  // Non-well-known names are the unbounded part of interner memory;
  // charge them to the profiler's current scope.
  obs::prof::charge_bytes(view.size());
  return view;
}

}  // namespace hv::html
