// Insertion-mode handlers for the TreeBuilder (WHATWG HTML 13.2.6.4),
// split from treebuilder.cc for readability.
#include <algorithm>
#include <array>
#include <unordered_set>

#include "html/encoding.h"
#include "html/quirks.h"
#include "html/treebuilder.h"

namespace hv::html {
namespace {

using TagSet = std::unordered_set<std::string_view>;

bool in_set(const TagSet& set, std::string_view tag) {
  return set.find(tag) != set.end();
}

std::size_t leading_ws(std::string_view data) {
  std::size_t i = 0;
  while (i < data.size() &&
         is_ascii_whitespace(static_cast<unsigned char>(data[i]))) {
    ++i;
  }
  return i;
}

bool all_ws(std::string_view data) { return leading_ws(data) == data.size(); }

Token synthetic_start_tag(std::string_view name, SourcePosition position) {
  Token token;
  token.type = Token::Type::kStartTag;
  token.name.assign(name);
  token.position = position;
  return token;
}

const TagSet kHeadContentTags = {"base",  "basefont", "bgsound", "link",
                                 "meta",  "noframes", "script",  "style",
                                 "template", "title"};

}  // namespace

// --- misc helpers -----------------------------------------------------------

void TreeBuilder::acknowledge_self_closing(Token& token) {
  token.self_closing = false;  // acknowledged: suppress the non-void error
}

void TreeBuilder::merge_attributes_into(Element* element, const Token& token) {
  if (element == nullptr) return;
  for (const Attribute& attr : token.attributes) {
    element->add_attribute_if_missing(attr.name, attr.value);
  }
}

void TreeBuilder::note_url_bearing(const Token& token) {
  if (token.type != Token::Type::kStartTag || token.name == "base") return;
  static const TagSet kUrlAttrs = {"href",   "src",    "action", "formaction",
                                   "poster", "background", "data", "srcset",
                                   "cite",   "longdesc",   "usemap"};
  for (const Attribute& attr : token.attributes) {
    if (in_set(kUrlAttrs, attr.name)) {
      seen_url_bearing_ = true;
      return;
    }
  }
}

void TreeBuilder::handle_base_start_tag(const Token& token,
                                        bool in_head_section) {
  if (seen_base_element_) {
    error(ParseError::MultipleBaseElements, token);
    observe(ObservationKind::kSecondBase, token);
  }
  seen_base_element_ = true;
  if (!in_head_section) {
    error(ParseError::BaseOutsideHead, token);
    observe(ObservationKind::kBaseOutsideHead, token);
  }
  if (seen_url_bearing_) {
    error(ParseError::BaseAfterUrlUse, token);
    observe(ObservationKind::kBaseAfterUrlUse, token);
  }
}

void TreeBuilder::handle_meta_position_check(const Token& token,
                                             bool in_head_section) {
  if (in_head_section) return;
  const auto http_equiv = token.attribute("http-equiv");
  if (!http_equiv.has_value()) return;
  error(ParseError::MetaHttpEquivInBody, token, std::string(*http_equiv));
  observe(ObservationKind::kMetaHttpEquivOutsideHead, token,
          std::string(*http_equiv));
}

void TreeBuilder::switch_tokenizer_for(const Token& start_tag) {
  (void)start_tag;  // switching is done inline at the insertion sites
}

void TreeBuilder::stop_parsing(const Token& eof_token) {
  static const TagSet kAllowedOpen = {"dd", "dt",    "li",    "optgroup",
                                      "option", "p", "rb",    "rp",
                                      "rt", "rtc",   "tbody", "td",
                                      "tfoot", "th", "thead", "tr",
                                      "body", "html"};
  bool generic_reported = false;
  for (const Element* element : open_elements_) {
    if (element->ns() != Namespace::kHtml) continue;
    const std::string_view tag = element->tag_name();
    if (tag == "select") {
      // DE1/DE2-style leak: the parser silently closes the element at EOF
      // (spec 13.2.5.2), absorbing all trailing content.
      observe(ObservationKind::kSelectOpenAtEof, eof_token, tag);
      continue;
    }
    if (tag == "textarea") {
      observe(ObservationKind::kTextareaOpenAtEof, eof_token, tag);
      continue;
    }
    if (!in_set(kAllowedOpen, tag) && !generic_reported) {
      error(ParseError::OpenElementsAtEof, eof_token, tag);
      observe(ObservationKind::kElementsOpenAtEof, eof_token, tag);
      generic_reported = true;
    }
  }
  stopped_ = true;
}

// --- initial / before html / before head -----------------------------------

void TreeBuilder::mode_initial(Token& token) {
  switch (token.type) {
    case Token::Type::kCharacters: {
      const std::size_t ws = leading_ws(token.data);
      if (ws == token.data.size()) return;  // whitespace is ignored
      token.data.erase(0, ws);
      break;  // anything else
    }
    case Token::Type::kComment:
      insert_comment(token, &document_);
      return;
    case Token::Type::kDoctype: {
      DocumentType* doctype = document_.create_doctype(token.name);
      doctype->public_id = token.public_identifier;
      doctype->system_id = token.system_identifier;
      document_.append_child(doctype);
      quirks_mode_ = doctype_indicates_quirks(
          token.force_quirks, token.name, token.public_identifier,
          token.has_system_identifier, token.system_identifier);
      mode_ = InsertionMode::kBeforeHtml;
      return;
    }
    default:
      break;
  }
  // Anything else: no DOCTYPE; quirks mode, reprocess.
  quirks_mode_ = true;
  mode_ = InsertionMode::kBeforeHtml;
  dispatch(token);
}

void TreeBuilder::mode_before_html(Token& token) {
  switch (token.type) {
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kComment:
      insert_comment(token, &document_);
      return;
    case Token::Type::kCharacters: {
      const std::size_t ws = leading_ws(token.data);
      if (ws == token.data.size()) return;
      token.data.erase(0, ws);
      break;
    }
    case Token::Type::kStartTag:
      if (token.name == "html") {
        Element* html = create_element_for_token(token, Namespace::kHtml);
        document_.append_child(html);
        push_open(html);
        mode_ = InsertionMode::kBeforeHead;
        return;
      }
      break;
    case Token::Type::kEndTag:
      if (token.name != "head" && token.name != "body" &&
          token.name != "html" && token.name != "br") {
        error(ParseError::UnexpectedEndTag, token, token.name);
        return;
      }
      break;
    default:
      break;
  }
  Element* html = document_.create_element("html");
  document_.append_child(html);
  push_open(html);
  mode_ = InsertionMode::kBeforeHead;
  dispatch(token);
}

void TreeBuilder::mode_before_head(Token& token) {
  switch (token.type) {
    case Token::Type::kCharacters: {
      const std::size_t ws = leading_ws(token.data);
      if (ws == token.data.size()) return;
      token.data.erase(0, ws);
      break;
    }
    case Token::Type::kComment:
      insert_comment(token);
      return;
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kStartTag:
      if (token.name == "html") {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      if (token.name == "head") {
        head_element_ = insert_html_element(token);
        source_head_open_ = true;
        mode_ = InsertionMode::kInHead;
        return;
      }
      break;
    case Token::Type::kEndTag:
      if (token.name != "head" && token.name != "body" &&
          token.name != "html" && token.name != "br") {
        error(ParseError::UnexpectedEndTag, token, token.name);
        return;
      }
      break;
    default:
      break;
  }
  head_element_ =
      insert_html_element(synthetic_start_tag("head", token.position));
  head_was_implicit_ = true;
  source_head_open_ = true;
  mode_ = InsertionMode::kInHead;
  dispatch(token);
}

// --- in head -----------------------------------------------------------------

void TreeBuilder::mode_in_head(Token& token) {
  const bool genuinely_in_head = mode_ == InsertionMode::kInHead;
  const auto note_head_content = [&](const Token& t) {
    if (genuinely_in_head && head_was_implicit_ &&
        !reported_implicit_head_content_) {
      reported_implicit_head_content_ = true;
      observe(ObservationKind::kHeadImplicitWithContent, t, t.name);
    }
  };

  switch (token.type) {
    case Token::Type::kCharacters: {
      const std::size_t ws = leading_ws(token.data);
      if (ws > 0) insert_character_data(std::string_view(token.data).substr(0, ws));
      if (ws == token.data.size()) return;
      token.data.erase(0, ws);
      break;  // anything else
    }
    case Token::Type::kComment:
      insert_comment(token);
      return;
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kStartTag: {
      const std::string& name = token.name;
      if (name == "html") {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      if (name == "base" || name == "basefont" || name == "bgsound" ||
          name == "link") {
        note_head_content(token);
        insert_html_element(token);
        pop_open();
        acknowledge_self_closing(token);
        if (name == "base") handle_base_start_tag(token, source_head_open_);
        return;
      }
      if (name == "meta") {
        note_head_content(token);
        insert_html_element(token);
        pop_open();
        acknowledge_self_closing(token);
        handle_meta_position_check(token, source_head_open_);
        return;
      }
      if (name == "title") {
        note_head_content(token);
        generic_rcdata(token);
        return;
      }
      if (name == "noscript") {
        note_head_content(token);
        if (scripting_) {
          generic_raw_text(token);  // a scripting UA never shows noscript
        } else {
          insert_html_element(token);
          mode_ = InsertionMode::kInHeadNoscript;
        }
        return;
      }
      if (name == "noframes" || name == "style") {
        note_head_content(token);
        generic_raw_text(token);
        return;
      }
      if (name == "script") {
        note_head_content(token);
        Element* element = insert_html_element(token);
        if (current_node() != element) return;  // depth cap
        if (tokenizer_ != nullptr) {
          tokenizer_->set_state(TokenizerState::kScriptData);
        }
        original_mode_ = mode_;
        mode_ = InsertionMode::kText;
        return;
      }
      if (name == "template") {
        insert_html_element(token);
        push_formatting_marker();
        frameset_ok_ = false;
        mode_ = InsertionMode::kInTemplate;
        template_modes_.push_back(InsertionMode::kInTemplate);
        return;
      }
      if (name == "head") {
        error(ParseError::UnexpectedStartTag, token, name);
        return;
      }
      break;  // anything else
    }
    case Token::Type::kEndTag: {
      const std::string& name = token.name;
      if (name == "head") {
        pop_open();
        head_explicitly_closed_ = true;
        mode_ = InsertionMode::kAfterHead;
        return;
      }
      if (name == "template") {
        if (!stack_contains("template")) {
          error(ParseError::UnexpectedEndTag, token, name);
          return;
        }
        generate_all_implied_end_tags_thoroughly();
        if (current_node() == nullptr || !current_node()->is_html("template")) {
          error(ParseError::MisnestedTag, token, name);
        }
        pop_until_inclusive("template");
        clear_formatting_to_marker();
        if (!template_modes_.empty()) template_modes_.pop_back();
        reset_insertion_mode();
        return;
      }
      if (name != "body" && name != "html" && name != "br") {
        error(ParseError::UnexpectedEndTag, token, name);
        return;
      }
      break;  // anything else
    }
    default:
      break;  // EOF -> anything else
  }

  // Anything else: act as if </head> was seen, then reprocess.  This is the
  // silent repair HF1 measures: the parser cannot know which elements were
  // meant to live in the head (paper section 3.2.1).
  if (genuinely_in_head) {
    const bool legit_omission =
        token.type == Token::Type::kEof ||
        (token.type == Token::Type::kStartTag &&
         (token.name == "body" || token.name == "frameset")) ||
        (token.type == Token::Type::kEndTag &&
         (token.name == "body" || token.name == "html" ||
          token.name == "br"));
    const bool head_has_content =
        head_element_ != nullptr && !head_element_->children().empty();
    if (!legit_omission && (head_has_content || !head_was_implicit_)) {
      error(ParseError::StrayStartTagInHead, token,
            token.type == Token::Type::kCharacters ? "#text" : token.name);
      observe(ObservationKind::kHeadClosedByStrayElement, token,
              token.type == Token::Type::kCharacters ? "#text" : token.name);
      suppress_next_body_implied_ = true;  // already counted under HF1
    }
    if (head_was_implicit_ && !head_has_content) {
      // Legitimate head omission (<html><div>...): nothing head-like in the
      // source, so position checks must not treat what follows as in-head.
      source_head_open_ = false;
    }
  }
  pop_open();  // the head element
  mode_ = InsertionMode::kAfterHead;
  dispatch(token);
}

void TreeBuilder::mode_in_head_noscript(Token& token) {
  switch (token.type) {
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kCharacters: {
      const std::size_t ws = leading_ws(token.data);
      if (ws > 0) {
        Token prefix;
        prefix.type = Token::Type::kCharacters;
        prefix.data = token.data.substr(0, ws);
        prefix.position = token.position;
        process_by_mode(prefix, InsertionMode::kInHead);
      }
      if (ws == token.data.size()) return;
      token.data.erase(0, ws);
      break;  // anything else
    }
    case Token::Type::kComment:
      process_by_mode(token, InsertionMode::kInHead);
      return;
    case Token::Type::kStartTag: {
      const std::string& name = token.name;
      if (name == "html") {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      if (name == "basefont" || name == "bgsound" || name == "link" ||
          name == "meta" || name == "noframes" || name == "style") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      if (name == "head" || name == "noscript") {
        error(ParseError::UnexpectedStartTag, token, name);
        return;
      }
      break;
    }
    case Token::Type::kEndTag:
      if (token.name == "noscript") {
        pop_open();
        mode_ = InsertionMode::kInHead;
        return;
      }
      if (token.name != "br") {
        error(ParseError::UnexpectedEndTag, token, token.name);
        return;
      }
      break;
    default:
      break;
  }
  error(ParseError::TreeConstructionGeneric, token, token.name);
  pop_open();  // noscript
  mode_ = InsertionMode::kInHead;
  dispatch(token);
}

// --- after head ---------------------------------------------------------------

void TreeBuilder::mode_after_head(Token& token) {
  switch (token.type) {
    case Token::Type::kCharacters: {
      const std::size_t ws = leading_ws(token.data);
      if (ws > 0) insert_character_data(std::string_view(token.data).substr(0, ws));
      if (ws == token.data.size()) return;
      token.data.erase(0, ws);
      break;
    }
    case Token::Type::kComment:
      insert_comment(token);
      return;
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kStartTag: {
      const std::string& name = token.name;
      if (name == "html") {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      if (name == "body") {
        ++body_start_tokens_;
        insert_html_element(token);
        frameset_ok_ = false;
        mode_ = InsertionMode::kInBody;
        return;
      }
      if (name == "frameset") {
        insert_html_element(token);
        mode_ = InsertionMode::kInFrameset;
        return;
      }
      if (in_set(kHeadContentTags, name)) {
        // Head-only content after </head>: the parser silently stuffs it
        // back into the head (HF1 territory).
        error(ParseError::StrayContentAfterHead, token, name);
        observe(ObservationKind::kHeadContentAfterHead, token, name);
        if (head_element_ != nullptr) push_open(head_element_);
        process_by_mode(token, InsertionMode::kInHead);
        if (head_element_ != nullptr) remove_from_stack(head_element_);
        return;
      }
      if (name == "head") {
        error(ParseError::UnexpectedStartTag, token, name);
        return;
      }
      break;
    }
    case Token::Type::kEndTag: {
      if (token.name == "template") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      if (token.name != "body" && token.name != "html" &&
          token.name != "br") {
        error(ParseError::UnexpectedEndTag, token, token.name);
        return;
      }
      break;
    }
    default:
      break;
  }

  // Anything else: imply <body>.  When actual content triggered this, the
  // page has "content before body" (HF2).
  const bool content_triggered =
      token.type == Token::Type::kStartTag ||
      token.type == Token::Type::kCharacters ||
      token.type == Token::Type::kNullCharacter;
  if (content_triggered && !suppress_next_body_implied_) {
    error(ParseError::StrayContentAfterHead, token,
          token.type == Token::Type::kStartTag ? token.name : "#text");
    observe(ObservationKind::kBodyImpliedByContent, token,
            token.type == Token::Type::kStartTag ? token.name : "#text");
  }
  suppress_next_body_implied_ = false;
  insert_html_element(synthetic_start_tag("body", token.position));
  mode_ = InsertionMode::kInBody;
  dispatch(token);
}

// --- text ----------------------------------------------------------------------

void TreeBuilder::mode_text(Token& token) {
  switch (token.type) {
    case Token::Type::kCharacters:
      insert_character_data(token.data);
      return;
    case Token::Type::kNullCharacter:
      insert_character_data("\xEF\xBF\xBD");
      return;
    case Token::Type::kEof: {
      error(ParseError::OpenElementsAtEof, token,
            current_node() != nullptr ? current_node()->tag_name() : "");
      if (current_node() != nullptr &&
          current_node()->is_html("textarea")) {
        // DE1: the spec closes the textarea at EOF, so everything after the
        // unterminated tag has been swallowed as text.
        observe(ObservationKind::kTextareaOpenAtEof, token, "textarea");
      }
      pop_open();
      mode_ = original_mode_;
      dispatch(token);
      return;
    }
    case Token::Type::kEndTag:
      pop_open();
      mode_ = original_mode_;
      return;
    default:
      return;  // start tags/comments cannot occur in text mode
  }
}

// --- after body / frameset tails -------------------------------------------------

void TreeBuilder::mode_after_body(Token& token) {
  switch (token.type) {
    case Token::Type::kCharacters:
      if (all_ws(token.data)) {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      break;
    case Token::Type::kComment:
      insert_comment(token, open_elements_.empty()
                                ? static_cast<Node*>(&document_)
                                : open_elements_.front());
      return;
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kStartTag:
      if (token.name == "html") {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      break;
    case Token::Type::kEndTag:
      if (token.name == "html") {
        mode_ = InsertionMode::kAfterAfterBody;
        return;
      }
      break;
    case Token::Type::kEof:
      stop_parsing(token);
      return;
    default:
      break;
  }
  error(ParseError::TreeConstructionGeneric, token, token.name);
  mode_ = InsertionMode::kInBody;
  dispatch(token);
}

void TreeBuilder::mode_in_frameset(Token& token) {
  switch (token.type) {
    case Token::Type::kCharacters: {
      const std::size_t ws = leading_ws(token.data);
      if (ws > 0) insert_character_data(std::string_view(token.data).substr(0, ws));
      if (ws < token.data.size()) {
        error(ParseError::TreeConstructionGeneric, token, "#text");
      }
      return;
    }
    case Token::Type::kComment:
      insert_comment(token);
      return;
    case Token::Type::kDoctype:
      error(ParseError::UnexpectedDoctype, token);
      return;
    case Token::Type::kStartTag:
      if (token.name == "html") {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      if (token.name == "frameset") {
        insert_html_element(token);
        return;
      }
      if (token.name == "frame") {
        insert_html_element(token);
        pop_open();
        acknowledge_self_closing(token);
        return;
      }
      if (token.name == "noframes") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      break;
    case Token::Type::kEndTag:
      if (token.name == "frameset") {
        if (current_node() != nullptr && current_node()->is_html("html")) {
          error(ParseError::UnexpectedEndTag, token, token.name);
          return;
        }
        pop_open();
        if (current_node() != nullptr &&
            !current_node()->is_html("frameset")) {
          mode_ = InsertionMode::kAfterFrameset;
        }
        return;
      }
      break;
    case Token::Type::kEof:
      if (current_node() != nullptr && !current_node()->is_html("html")) {
        error(ParseError::OpenElementsAtEof, token, "frameset");
      }
      stop_parsing(token);
      return;
    default:
      break;
  }
  error(ParseError::TreeConstructionGeneric, token, token.name);
}

void TreeBuilder::mode_after_frameset(Token& token) {
  switch (token.type) {
    case Token::Type::kCharacters: {
      const std::size_t ws = leading_ws(token.data);
      if (ws > 0) insert_character_data(std::string_view(token.data).substr(0, ws));
      if (ws < token.data.size()) {
        error(ParseError::TreeConstructionGeneric, token, "#text");
      }
      return;
    }
    case Token::Type::kComment:
      insert_comment(token);
      return;
    case Token::Type::kStartTag:
      if (token.name == "html") {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      if (token.name == "noframes") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      break;
    case Token::Type::kEndTag:
      if (token.name == "html") {
        mode_ = InsertionMode::kAfterAfterFrameset;
        return;
      }
      break;
    case Token::Type::kEof:
      stop_parsing(token);
      return;
    default:
      break;
  }
  error(ParseError::TreeConstructionGeneric, token, token.name);
}

void TreeBuilder::mode_after_after_body(Token& token) {
  switch (token.type) {
    case Token::Type::kComment:
      insert_comment(token, &document_);
      return;
    case Token::Type::kDoctype:
      process_by_mode(token, InsertionMode::kInBody);
      return;
    case Token::Type::kCharacters:
      if (all_ws(token.data)) {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      break;
    case Token::Type::kStartTag:
      if (token.name == "html") {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      break;
    case Token::Type::kEof:
      stop_parsing(token);
      return;
    default:
      break;
  }
  error(ParseError::TreeConstructionGeneric, token, token.name);
  mode_ = InsertionMode::kInBody;
  dispatch(token);
}

void TreeBuilder::mode_after_after_frameset(Token& token) {
  switch (token.type) {
    case Token::Type::kComment:
      insert_comment(token, &document_);
      return;
    case Token::Type::kDoctype:
      process_by_mode(token, InsertionMode::kInBody);
      return;
    case Token::Type::kCharacters:
      if (all_ws(token.data)) {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      break;
    case Token::Type::kStartTag:
      if (token.name == "html") {
        process_by_mode(token, InsertionMode::kInBody);
        return;
      }
      if (token.name == "noframes") {
        process_by_mode(token, InsertionMode::kInHead);
        return;
      }
      break;
    case Token::Type::kEof:
      stop_parsing(token);
      return;
    default:
      break;
  }
  error(ParseError::TreeConstructionGeneric, token, token.name);
}

}  // namespace hv::html
