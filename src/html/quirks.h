// Quirks-mode determination from the DOCTYPE (WHATWG HTML 13.2.6.4.1).
//
// Quirks mode matters to the study because its one tree-construction
// effect here — <table> not closing an open <p> — changes where fostered
// content lands (HF4), and old sites with HTML4 doctypes are parsed in
// quirks mode by real browsers.
#pragma once

#include <string_view>

namespace hv::html {

/// True when a DOCTYPE with these fields switches the document to quirks
/// mode.  `has_system_id` distinguishes an absent system identifier from
/// an empty one (the spec treats them differently for two prefixes).
bool doctype_indicates_quirks(bool force_quirks, std::string_view name,
                              std::string_view public_id,
                              bool has_system_id,
                              std::string_view system_id) noexcept;

/// ASCII case-insensitive prefix test (the spec compares identifiers
/// case-insensitively).
bool istarts_with(std::string_view text, std::string_view prefix) noexcept;

}  // namespace hv::html
