#include "html/entities.h"

#include <algorithm>
#include <array>
#include <vector>

namespace hv::html {
namespace {

// The table below covers: the full HTML4 entity set (Latin-1, symbols,
// Greek, arrows, math, punctuation), the HTML5 additions seen in real
// markup, and the spec's legacy semicolon-less forms.  Entries are sorted
// lazily on first use so the source order can stay thematic.
constexpr NamedEntity kRawEntities[] = {
    // Core markup characters (with legacy forms).
    {"amp;", U'&'}, {"amp", U'&'}, {"lt;", U'<'}, {"lt", U'<'},
    {"gt;", U'>'}, {"gt", U'>'}, {"quot;", U'"'}, {"quot", U'"'},
    {"apos;", U'\''},
    // Latin-1 (ISO 8859-1) set, with legacy no-semicolon variants.
    {"nbsp;", 0x00A0}, {"nbsp", 0x00A0}, {"iexcl;", 0x00A1}, {"iexcl", 0x00A1},
    {"cent;", 0x00A2}, {"cent", 0x00A2}, {"pound;", 0x00A3}, {"pound", 0x00A3},
    {"curren;", 0x00A4}, {"curren", 0x00A4}, {"yen;", 0x00A5}, {"yen", 0x00A5},
    {"brvbar;", 0x00A6}, {"brvbar", 0x00A6}, {"sect;", 0x00A7},
    {"sect", 0x00A7}, {"uml;", 0x00A8}, {"uml", 0x00A8}, {"copy;", 0x00A9},
    {"copy", 0x00A9}, {"ordf;", 0x00AA}, {"ordf", 0x00AA}, {"laquo;", 0x00AB},
    {"laquo", 0x00AB}, {"not;", 0x00AC}, {"not", 0x00AC}, {"shy;", 0x00AD},
    {"shy", 0x00AD}, {"reg;", 0x00AE}, {"reg", 0x00AE}, {"macr;", 0x00AF},
    {"macr", 0x00AF}, {"deg;", 0x00B0}, {"deg", 0x00B0}, {"plusmn;", 0x00B1},
    {"plusmn", 0x00B1}, {"sup2;", 0x00B2}, {"sup2", 0x00B2}, {"sup3;", 0x00B3},
    {"sup3", 0x00B3}, {"acute;", 0x00B4}, {"acute", 0x00B4},
    {"micro;", 0x00B5}, {"micro", 0x00B5}, {"para;", 0x00B6}, {"para", 0x00B6},
    {"middot;", 0x00B7}, {"middot", 0x00B7}, {"cedil;", 0x00B8},
    {"cedil", 0x00B8}, {"sup1;", 0x00B9}, {"sup1", 0x00B9}, {"ordm;", 0x00BA},
    {"ordm", 0x00BA}, {"raquo;", 0x00BB}, {"raquo", 0x00BB},
    {"frac14;", 0x00BC}, {"frac14", 0x00BC}, {"frac12;", 0x00BD},
    {"frac12", 0x00BD}, {"frac34;", 0x00BE}, {"frac34", 0x00BE},
    {"iquest;", 0x00BF}, {"iquest", 0x00BF},
    {"Agrave;", 0x00C0}, {"Agrave", 0x00C0}, {"Aacute;", 0x00C1},
    {"Aacute", 0x00C1}, {"Acirc;", 0x00C2}, {"Acirc", 0x00C2},
    {"Atilde;", 0x00C3}, {"Atilde", 0x00C3}, {"Auml;", 0x00C4},
    {"Auml", 0x00C4}, {"Aring;", 0x00C5}, {"Aring", 0x00C5},
    {"AElig;", 0x00C6}, {"AElig", 0x00C6}, {"Ccedil;", 0x00C7},
    {"Ccedil", 0x00C7}, {"Egrave;", 0x00C8}, {"Egrave", 0x00C8},
    {"Eacute;", 0x00C9}, {"Eacute", 0x00C9}, {"Ecirc;", 0x00CA},
    {"Ecirc", 0x00CA}, {"Euml;", 0x00CB}, {"Euml", 0x00CB},
    {"Igrave;", 0x00CC}, {"Igrave", 0x00CC}, {"Iacute;", 0x00CD},
    {"Iacute", 0x00CD}, {"Icirc;", 0x00CE}, {"Icirc", 0x00CE},
    {"Iuml;", 0x00CF}, {"Iuml", 0x00CF}, {"ETH;", 0x00D0}, {"ETH", 0x00D0},
    {"Ntilde;", 0x00D1}, {"Ntilde", 0x00D1}, {"Ograve;", 0x00D2},
    {"Ograve", 0x00D2}, {"Oacute;", 0x00D3}, {"Oacute", 0x00D3},
    {"Ocirc;", 0x00D4}, {"Ocirc", 0x00D4}, {"Otilde;", 0x00D5},
    {"Otilde", 0x00D5}, {"Ouml;", 0x00D6}, {"Ouml", 0x00D6},
    {"times;", 0x00D7}, {"times", 0x00D7}, {"Oslash;", 0x00D8},
    {"Oslash", 0x00D8}, {"Ugrave;", 0x00D9}, {"Ugrave", 0x00D9},
    {"Uacute;", 0x00DA}, {"Uacute", 0x00DA}, {"Ucirc;", 0x00DB},
    {"Ucirc", 0x00DB}, {"Uuml;", 0x00DC}, {"Uuml", 0x00DC},
    {"Yacute;", 0x00DD}, {"Yacute", 0x00DD}, {"THORN;", 0x00DE},
    {"THORN", 0x00DE}, {"szlig;", 0x00DF}, {"szlig", 0x00DF},
    {"agrave;", 0x00E0}, {"agrave", 0x00E0}, {"aacute;", 0x00E1},
    {"aacute", 0x00E1}, {"acirc;", 0x00E2}, {"acirc", 0x00E2},
    {"atilde;", 0x00E3}, {"atilde", 0x00E3}, {"auml;", 0x00E4},
    {"auml", 0x00E4}, {"aring;", 0x00E5}, {"aring", 0x00E5},
    {"aelig;", 0x00E6}, {"aelig", 0x00E6}, {"ccedil;", 0x00E7},
    {"ccedil", 0x00E7}, {"egrave;", 0x00E8}, {"egrave", 0x00E8},
    {"eacute;", 0x00E9}, {"eacute", 0x00E9}, {"ecirc;", 0x00EA},
    {"ecirc", 0x00EA}, {"euml;", 0x00EB}, {"euml", 0x00EB},
    {"igrave;", 0x00EC}, {"igrave", 0x00EC}, {"iacute;", 0x00ED},
    {"iacute", 0x00ED}, {"icirc;", 0x00EE}, {"icirc", 0x00EE},
    {"iuml;", 0x00EF}, {"iuml", 0x00EF}, {"eth;", 0x00F0}, {"eth", 0x00F0},
    {"ntilde;", 0x00F1}, {"ntilde", 0x00F1}, {"ograve;", 0x00F2},
    {"ograve", 0x00F2}, {"oacute;", 0x00F3}, {"oacute", 0x00F3},
    {"ocirc;", 0x00F4}, {"ocirc", 0x00F4}, {"otilde;", 0x00F5},
    {"otilde", 0x00F5}, {"ouml;", 0x00F6}, {"ouml", 0x00F6},
    {"divide;", 0x00F7}, {"divide", 0x00F7}, {"oslash;", 0x00F8},
    {"oslash", 0x00F8}, {"ugrave;", 0x00F9}, {"ugrave", 0x00F9},
    {"uacute;", 0x00FA}, {"uacute", 0x00FA}, {"ucirc;", 0x00FB},
    {"ucirc", 0x00FB}, {"uuml;", 0x00FC}, {"uuml", 0x00FC},
    {"yacute;", 0x00FD}, {"yacute", 0x00FD}, {"thorn;", 0x00FE},
    {"thorn", 0x00FE}, {"yuml;", 0x00FF}, {"yuml", 0x00FF},
    // Latin extended / ligatures.
    {"OElig;", 0x0152}, {"oelig;", 0x0153}, {"Scaron;", 0x0160},
    {"scaron;", 0x0161}, {"Yuml;", 0x0178}, {"fnof;", 0x0192},
    {"circ;", 0x02C6}, {"tilde;", 0x02DC},
    // Greek.
    {"Alpha;", 0x0391}, {"Beta;", 0x0392}, {"Gamma;", 0x0393},
    {"Delta;", 0x0394}, {"Epsilon;", 0x0395}, {"Zeta;", 0x0396},
    {"Eta;", 0x0397}, {"Theta;", 0x0398}, {"Iota;", 0x0399},
    {"Kappa;", 0x039A}, {"Lambda;", 0x039B}, {"Mu;", 0x039C}, {"Nu;", 0x039D},
    {"Xi;", 0x039E}, {"Omicron;", 0x039F}, {"Pi;", 0x03A0}, {"Rho;", 0x03A1},
    {"Sigma;", 0x03A3}, {"Tau;", 0x03A4}, {"Upsilon;", 0x03A5},
    {"Phi;", 0x03A6}, {"Chi;", 0x03A7}, {"Psi;", 0x03A8}, {"Omega;", 0x03A9},
    {"alpha;", 0x03B1}, {"beta;", 0x03B2}, {"gamma;", 0x03B3},
    {"delta;", 0x03B4}, {"epsilon;", 0x03B5}, {"zeta;", 0x03B6},
    {"eta;", 0x03B7}, {"theta;", 0x03B8}, {"iota;", 0x03B9},
    {"kappa;", 0x03BA}, {"lambda;", 0x03BB}, {"mu;", 0x03BC}, {"nu;", 0x03BD},
    {"xi;", 0x03BE}, {"omicron;", 0x03BF}, {"pi;", 0x03C0}, {"rho;", 0x03C1},
    {"sigmaf;", 0x03C2}, {"sigma;", 0x03C3}, {"tau;", 0x03C4},
    {"upsilon;", 0x03C5}, {"phi;", 0x03C6}, {"chi;", 0x03C7},
    {"psi;", 0x03C8}, {"omega;", 0x03C9}, {"thetasym;", 0x03D1},
    {"upsih;", 0x03D2}, {"piv;", 0x03D6},
    // Spaces and punctuation.
    {"ensp;", 0x2002}, {"emsp;", 0x2003}, {"thinsp;", 0x2009},
    {"zwnj;", 0x200C}, {"zwj;", 0x200D}, {"lrm;", 0x200E}, {"rlm;", 0x200F},
    {"ndash;", 0x2013}, {"mdash;", 0x2014}, {"horbar;", 0x2015},
    {"lsquo;", 0x2018}, {"rsquo;", 0x2019}, {"sbquo;", 0x201A},
    {"ldquo;", 0x201C}, {"rdquo;", 0x201D}, {"bdquo;", 0x201E},
    {"dagger;", 0x2020}, {"Dagger;", 0x2021}, {"bull;", 0x2022},
    {"hellip;", 0x2026}, {"permil;", 0x2030}, {"prime;", 0x2032},
    {"Prime;", 0x2033}, {"lsaquo;", 0x2039}, {"rsaquo;", 0x203A},
    {"oline;", 0x203E}, {"frasl;", 0x2044}, {"euro;", 0x20AC},
    {"image;", 0x2111}, {"weierp;", 0x2118}, {"real;", 0x211C},
    {"trade;", 0x2122}, {"alefsym;", 0x2135},
    // Arrows.
    {"larr;", 0x2190}, {"uarr;", 0x2191}, {"rarr;", 0x2192}, {"darr;", 0x2193},
    {"harr;", 0x2194}, {"crarr;", 0x21B5}, {"lArr;", 0x21D0},
    {"uArr;", 0x21D1}, {"rArr;", 0x21D2}, {"dArr;", 0x21D3}, {"hArr;", 0x21D4},
    // Mathematical operators.
    {"forall;", 0x2200}, {"part;", 0x2202}, {"exist;", 0x2203},
    {"empty;", 0x2205}, {"nabla;", 0x2207}, {"isin;", 0x2208},
    {"notin;", 0x2209}, {"ni;", 0x220B}, {"prod;", 0x220F}, {"sum;", 0x2211},
    {"minus;", 0x2212}, {"lowast;", 0x2217}, {"radic;", 0x221A},
    {"prop;", 0x221D}, {"infin;", 0x221E}, {"ang;", 0x2220}, {"and;", 0x2227},
    {"or;", 0x2228}, {"cap;", 0x2229}, {"cup;", 0x222A}, {"int;", 0x222B},
    {"there4;", 0x2234}, {"sim;", 0x223C}, {"cong;", 0x2245},
    {"asymp;", 0x2248}, {"ne;", 0x2260}, {"equiv;", 0x2261}, {"le;", 0x2264},
    {"ge;", 0x2265}, {"sub;", 0x2282}, {"sup;", 0x2283}, {"nsub;", 0x2284},
    {"sube;", 0x2286}, {"supe;", 0x2287}, {"oplus;", 0x2295},
    {"otimes;", 0x2297}, {"perp;", 0x22A5}, {"sdot;", 0x22C5},
    // Technical / shapes / cards.
    {"lceil;", 0x2308}, {"rceil;", 0x2309}, {"lfloor;", 0x230A},
    {"rfloor;", 0x230B}, {"lang;", 0x27E8}, {"rang;", 0x27E9},
    {"loz;", 0x25CA}, {"spades;", 0x2660}, {"clubs;", 0x2663},
    {"hearts;", 0x2665}, {"diams;", 0x2666},
    // Common HTML5 additions seen in the wild.
    {"LT;", U'<'}, {"GT;", U'>'}, {"AMP;", U'&'}, {"QUOT;", U'"'},
    {"COPY;", 0x00A9}, {"REG;", 0x00AE}, {"TRADE;", 0x2122},
    {"num;", U'#'}, {"percnt;", U'%'}, {"ast;", U'*'}, {"commat;", U'@'},
    {"lbrack;", U'['}, {"rbrack;", U']'}, {"lbrace;", U'{'},
    {"rbrace;", U'}'}, {"lowbar;", U'_'}, {"sol;", U'/'}, {"bsol;", U'\\'},
    {"semi;", U';'}, {"colon;", U':'}, {"comma;", U','}, {"period;", U'.'},
    {"excl;", U'!'}, {"quest;", U'?'}, {"dollar;", U'$'}, {"equals;", U'='},
    {"plus;", U'+'}, {"Hat;", U'^'}, {"grave;", U'`'}, {"vert;", U'|'},
    {"star;", 0x2606}, {"phone;", 0x260E}, {"check;", 0x2713},
    {"cross;", 0x2717}, {"sung;", 0x266A}, {"flat;", 0x266D},
    {"natur;", 0x266E}, {"sharp;", 0x266F}, {"NotEqualTilde;", 0x2242, 0x0338},
    {"nvlt;", U'<', 0x20D2}, {"nvgt;", U'>', 0x20D2},
};

const std::vector<NamedEntity>& sorted_entities() {
  static const std::vector<NamedEntity> sorted = [] {
    std::vector<NamedEntity> v(std::begin(kRawEntities),
                               std::end(kRawEntities));
    std::sort(v.begin(), v.end(),
              [](const NamedEntity& a, const NamedEntity& b) {
                return a.name < b.name;
              });
    return v;
  }();
  return sorted;
}

constexpr std::size_t kMaxEntityNameLength = 32;

}  // namespace

const NamedEntity* find_named_entity(std::string_view name) noexcept {
  const auto& table = sorted_entities();
  const auto it = std::lower_bound(
      table.begin(), table.end(), name,
      [](const NamedEntity& e, std::string_view n) { return e.name < n; });
  if (it != table.end() && it->name == name) return &*it;
  return nullptr;
}

const NamedEntity* match_named_entity(std::string_view text,
                                      std::size_t* matched_length) noexcept {
  const std::size_t limit = std::min(text.size(), kMaxEntityNameLength);
  for (std::size_t len = limit; len > 0; --len) {
    if (const NamedEntity* entity = find_named_entity(text.substr(0, len))) {
      if (matched_length != nullptr) *matched_length = len;
      return entity;
    }
  }
  if (matched_length != nullptr) *matched_length = 0;
  return nullptr;
}

char32_t sanitize_numeric_reference(char32_t value, bool* error) noexcept {
  bool had_error = false;
  char32_t result = value;
  if (value == 0x00) {
    had_error = true;
    result = 0xFFFD;
  } else if (value > 0x10FFFF) {
    had_error = true;
    result = 0xFFFD;
  } else if (value >= 0xD800 && value <= 0xDFFF) {
    had_error = true;
    result = 0xFFFD;
  } else if ((value >= 0xFDD0 && value <= 0xFDEF) ||
             (value & 0xFFFE) == 0xFFFE) {
    had_error = true;  // noncharacter: error but value kept
  } else if (value >= 0x80 && value <= 0x9F) {
    // Windows-1252 remapping table from the spec.
    static constexpr char32_t kC1Remap[32] = {
        0x20AC, 0x81,   0x201A, 0x0192, 0x201E, 0x2026, 0x2020, 0x2021,
        0x02C6, 0x2030, 0x0160, 0x2039, 0x0152, 0x8D,   0x017D, 0x8F,
        0x90,   0x2018, 0x2019, 0x201C, 0x201D, 0x2022, 0x2013, 0x2014,
        0x02DC, 0x2122, 0x0161, 0x203A, 0x0153, 0x9D,   0x017E, 0x0178};
    had_error = true;
    result = kC1Remap[value - 0x80];
  } else if (value < 0x20 && value != 0x09 && value != 0x0A && value != 0x0C) {
    had_error = true;  // control character reference: error, value kept
  }
  if (error != nullptr) *error = had_error;
  return result;
}

std::size_t named_entity_count() noexcept { return sorted_entities().size(); }

}  // namespace hv::html
