// Structural observations emitted by the TreeBuilder.
//
// The HTML parser's error tolerance *repairs* markup silently; the study
// needs to know every time such a repair happened.  Each observation
// records one tolerated fix-up, with the element involved in `detail`.
// The checker (src/core) maps observations to the paper's violations:
//
//   kHeadClosedByStrayElement / kHeadImplicitWithContent /
//   kHeadContentAfterHead                          -> HF1
//   kBodyImpliedByContent                          -> HF2
//   kSecondBodyMerged                              -> HF3
//   kFosterParented                                -> HF4
//   kStrayForeignEndTag, kCdata handled via errors -> HF5_1
//   kForeignBreakoutSvg / kForeignErrorSvg         -> HF5_2
//   kForeignBreakoutMath / kForeignErrorMath       -> HF5_3
//   kMetaHttpEquivOutsideHead                      -> DM1
//   kBaseOutsideHead / kSecondBase / kBaseAfterUrl -> DM2_1/_2/_3
//   kNestedFormIgnored                             -> DE4
//   kTextareaOpenAtEof                             -> DE1
//   kSelectOpenAtEof                               -> DE2
#pragma once

#include <string>
#include <vector>

#include "html/errors.h"

namespace hv::html {

enum class ObservationKind : std::uint8_t {
  kHeadClosedByStrayElement,   ///< non-head element forced </head> (HF1)
  kHeadImplicitWithContent,    ///< no <head> tag, yet head content existed
  kHeadContentAfterHead,       ///< head-only element seen after </head>
  kBodyImpliedByContent,       ///< content (not <body>) opened the body (HF2)
  kSecondBodyMerged,           ///< duplicate <body>, attributes merged (HF3)
  kFosterParented,             ///< node relocated in front of a table (HF4)
  kStrayForeignEndTag,         ///< </svg> or </math> with nothing open (HF5_1)
  kForeignBreakoutSvg,         ///< HTML breakout tag closed an <svg> (HF5_2)
  kForeignBreakoutMath,        ///< HTML breakout tag closed a <math> (HF5_3)
  kForeignErrorSvg,            ///< other tolerated error inside <svg>
  kForeignErrorMath,           ///< other tolerated error inside <math>
  kMetaHttpEquivOutsideHead,   ///< meta[http-equiv] parsed outside head (DM1)
  kBaseOutsideHead,            ///< <base> parsed outside head (DM2_1)
  kSecondBase,                 ///< more than one <base> element (DM2_2)
  kBaseAfterUrlUse,            ///< <base> after a URL-bearing element (DM2_3)
  kNestedFormIgnored,          ///< <form> inside a form was dropped (DE4)
  kTextareaOpenAtEof,          ///< textarea auto-closed at EOF (DE1)
  kSelectOpenAtEof,            ///< select auto-closed at EOF (DE2)
  kElementsOpenAtEof,          ///< other non-omissible elements open at EOF
  kCount,
};

std::string_view to_string(ObservationKind kind) noexcept;

struct Observation {
  ObservationKind kind = ObservationKind::kElementsOpenAtEof;
  SourcePosition position;
  std::string detail;  ///< tag name or short description
};

using Observations = std::vector<Observation>;

}  // namespace hv::html
