// UTF-8 byte-stream decoding — the "Byte Stream Decoder" stage of the HTML
// parsing pipeline (paper section 2.1).
//
// Like the paper's framework (section 4.1) we only accept UTF-8-decodable
// documents; anything else is filtered upstream.  The decoder is strict:
// overlong sequences, surrogates, and out-of-range code points are rejected
// (mirroring the WHATWG Encoding Standard's UTF-8 decoder error behaviour).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace hv::html {

inline constexpr char32_t kReplacementCharacter = U'�';

/// Result of decoding one code point from a byte buffer.
struct DecodedCodePoint {
  char32_t code_point = 0;
  std::size_t length = 0;  ///< bytes consumed (1-4); 0 on truncated input
  bool valid = false;      ///< false => sequence malformed, caller decides
};

/// Decodes the UTF-8 sequence starting at `input[offset]`.
/// On malformed input returns {U+FFFD, bytes-to-skip, false} following the
/// Encoding Standard's maximal-subpart error recovery.
DecodedCodePoint decode_utf8(std::string_view input,
                             std::size_t offset) noexcept;

/// True if `input` is entirely well-formed UTF-8 (the paper's filter:
/// "the framework filters out documents that are not UTF-8 encodable").
bool is_valid_utf8(std::string_view input) noexcept;

/// Appends the UTF-8 encoding of `code_point` to `out`.
/// Invalid scalar values (surrogates, > U+10FFFF) encode U+FFFD instead.
void append_utf8(char32_t code_point, std::string& out);

/// Decodes a whole UTF-8 string into code points; malformed sequences become
/// U+FFFD.  Returns the number of replacement substitutions made.
std::size_t decode_utf8_string(std::string_view input,
                               std::u32string& out);

/// Number of bytes this code point occupies when encoded as UTF-8.
std::size_t utf8_length(char32_t code_point) noexcept;

}  // namespace hv::html
