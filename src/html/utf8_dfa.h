// Hoehrmann's table-driven UTF-8 DFA, the round-2 replacement for the
// per-sequence branching decoder in InputStream::pre_scan (DESIGN.md
// section 14).
//
// Table and stepping scheme from Bjoern Hoehrmann's "Flexible and Economical
// UTF-8 Decoder" (http://bjoern.hoehrmann.de/utf-8/decoder/dfa/, MIT
// licensed).  Bytes map to one of 12 character classes; (state, class)
// indexes a transition table whose states are premultiplied by 12.  The
// automaton accepts exactly the well-formed sequences our strict
// encoding.cc decoder accepts: overlong encodings, surrogates, and code
// points above U+10FFFF all reach kUtf8Reject.
//
// The DFA does not report maximal-subpart lengths on rejection, so error
// recovery (rare by construction: one reject flips the whole document onto
// slow paths) falls back to decode_utf8() — tests/html_golden_equivalence
// pins the two decoders against each other byte by byte.
#pragma once

#include <cstdint>

namespace hv::html {

inline constexpr std::uint32_t kUtf8Accept = 0;
inline constexpr std::uint32_t kUtf8Reject = 12;

inline constexpr std::uint8_t kUtf8Dfa[] = {
    // Byte -> character class (256 entries).
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 0x00-0x0F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 0x10-0x1F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 0x20-0x2F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 0x30-0x3F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 0x40-0x4F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 0x50-0x5F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 0x60-0x6F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 0x70-0x7F
    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,  // 0x80-0x8F
    9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9,  // 0x90-0x9F
    7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,  // 0xA0-0xAF
    7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,  // 0xB0-0xBF
    8, 8, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,  // 0xC0-0xCF
    2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,  // 0xD0-0xDF
    10, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 4, 3, 3,  // 0xE0-0xEF
    11, 6, 6, 6, 5, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8,  // 0xF0-0xFF
    // (state, class) -> state transitions, states premultiplied by 12.
    0, 12, 24, 36, 60, 96, 84, 12, 12, 12, 48, 72,    // state  0: accept
    12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12,   // state 12: reject
    12, 0, 12, 12, 12, 12, 12, 0, 12, 0, 12, 12,      // state 24
    12, 24, 12, 12, 12, 12, 12, 24, 12, 24, 12, 12,   // state 36
    12, 12, 12, 12, 12, 12, 12, 24, 12, 12, 12, 12,   // state 48
    12, 24, 12, 12, 12, 12, 12, 12, 12, 24, 12, 12,   // state 60
    12, 12, 12, 12, 12, 12, 12, 36, 12, 36, 12, 12,   // state 72
    12, 36, 12, 12, 12, 12, 12, 36, 12, 36, 12, 12,   // state 84
    12, 36, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12,   // state 96
};

/// One DFA step: feeds `byte`, updating `*state` and the code point being
/// accumulated in `*code_point`.  Returns the new state; `*code_point`
/// holds the decoded scalar value when that state is kUtf8Accept.
inline std::uint32_t utf8_dfa_step(std::uint32_t* state,
                                   std::uint32_t* code_point,
                                   std::uint8_t byte) noexcept {
  const std::uint32_t type = kUtf8Dfa[byte];
  *code_point = (*state != kUtf8Accept)
                    ? (byte & 0x3Fu) | (*code_point << 6)
                    : (0xFFu >> type) & byte;
  *state = kUtf8Dfa[256 + *state + type];
  return *state;
}

}  // namespace hv::html
