#include "html/serializer.h"

#include <unordered_set>

namespace hv::html {
namespace {

bool is_void_element(const Element& element) {
  if (element.ns() != Namespace::kHtml) return false;
  static const std::unordered_set<std::string_view> kVoid = {
      "area",  "base",  "basefont", "bgsound", "br",    "col",
      "embed", "frame", "hr",       "img",     "input", "keygen",
      "link",  "meta",  "param",    "source",  "track", "wbr"};
  return kVoid.find(element.tag_name()) != kVoid.end();
}

bool is_raw_text_element(const Element& element) {
  if (element.ns() != Namespace::kHtml) return false;
  static const std::unordered_set<std::string_view> kRaw = {
      "style",  "script",   "xmp",      "iframe",
      "noembed", "noframes", "plaintext"};
  return kRaw.find(element.tag_name()) != kRaw.end();
}

bool is_rcdata_element(const Element& element) {
  return element.ns() == Namespace::kHtml &&
         (element.tag_name() == "textarea" || element.tag_name() == "title");
}

void serialize_node(const Node& node, std::string& out);

void serialize_element(const Element& element, std::string& out) {
  out.push_back('<');
  out.append(element.tag_name());
  for (const DomAttribute& attr : element.attributes()) {
    out.push_back(' ');
    out.append(attr.name);
    out.append("=\"");
    out.append(escape_attribute(attr.value));
    out.push_back('"');
  }
  out.push_back('>');
  if (is_void_element(element)) return;
  for (const Node* child : element.children()) serialize_node(*child, out);
  out.append("</");
  out.append(element.tag_name());
  out.push_back('>');
}

void serialize_node(const Node& node, std::string& out) {
  switch (node.type()) {
    case NodeType::kDocument:
      for (const Node* child : node.children()) serialize_node(*child, out);
      return;
    case NodeType::kDocumentType: {
      const auto& doctype = static_cast<const DocumentType&>(node);
      out.append("<!DOCTYPE ");
      out.append(doctype.name);
      out.push_back('>');
      return;
    }
    case NodeType::kElement:
      serialize_element(static_cast<const Element&>(node), out);
      return;
    case NodeType::kText: {
      const auto& text = static_cast<const Text&>(node);
      const Node* parent = node.parent();
      const Element* parent_element =
          parent != nullptr ? parent->as_element() : nullptr;
      if (parent_element != nullptr && (is_raw_text_element(*parent_element) ||
                                        is_rcdata_element(*parent_element))) {
        // Raw text: emitted verbatim (13.3 step for script/style/...).
        // RCDATA content is also emitted verbatim by browsers' serializers.
        out.append(text.data);
      } else {
        out.append(escape_text(text.data));
      }
      return;
    }
    case NodeType::kComment: {
      out.append("<!--");
      out.append(static_cast<const Comment&>(node).data);
      out.append("-->");
      return;
    }
  }
}

}  // namespace

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '\xC2':
        // U+00A0 is C2 A0 in UTF-8.
        if (i + 1 < text.size() && text[i + 1] == '\xA0') {
          out.append("&nbsp;");
          ++i;
        } else {
          out.push_back(c);
        }
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string escape_attribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '"':
        out.append("&quot;");
        break;
      case '\xC2':
        if (i + 1 < text.size() && text[i + 1] == '\xA0') {
          out.append("&nbsp;");
          ++i;
        } else {
          out.push_back(c);
        }
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string serialize_children(const Node& node,
                               const SerializeOptions& options) {
  (void)options;
  std::string out;
  for (const Node* child : node.children()) serialize_node(*child, out);
  return out;
}

std::string serialize(const Node& node, const SerializeOptions& options) {
  (void)options;
  std::string out;
  serialize_node(node, out);
  return out;
}

}  // namespace hv::html
