// Parse error taxonomy of the WHATWG HTML Living Standard, section 13.2.
//
// Every error the specification names for the tokenizer and the tree builder
// is represented here with its spec identifier.  The paper's "Parsing Errors"
// violation category (FB1, FB2, DM3, DE3, ...) is defined directly in terms
// of these error states, so the checker consumes them verbatim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hv::html {

/// Spec-named parse errors (WHATWG HTML 13.2.5 "parse errors" plus the
/// generic tree-construction error).  Names mirror the spec's kebab-case
/// identifiers in UpperCamelCase.
enum class ParseError : std::uint8_t {
  // Tokenizer errors (spec table, 13.2.5).
  AbruptClosingOfEmptyComment,
  AbruptDoctypePublicIdentifier,
  AbruptDoctypeSystemIdentifier,
  AbsenceOfDigitsInNumericCharacterReference,
  CdataInHtmlContent,
  CharacterReferenceOutsideUnicodeRange,
  ControlCharacterInInputStream,
  ControlCharacterReference,
  DuplicateAttribute,
  EndTagWithAttributes,
  EndTagWithTrailingSolidus,
  EofBeforeTagName,
  EofInCdata,
  EofInComment,
  EofInDoctype,
  EofInScriptHtmlCommentLikeText,
  EofInTag,
  IncorrectlyClosedComment,
  IncorrectlyOpenedComment,
  InvalidCharacterSequenceAfterDoctypeName,
  InvalidFirstCharacterOfTagName,
  MissingAttributeValue,
  MissingDoctypeName,
  MissingDoctypePublicIdentifier,
  MissingDoctypeSystemIdentifier,
  MissingEndTagName,
  MissingQuoteBeforeDoctypePublicIdentifier,
  MissingQuoteBeforeDoctypeSystemIdentifier,
  MissingSemicolonAfterCharacterReference,
  MissingWhitespaceAfterDoctypePublicKeyword,
  MissingWhitespaceAfterDoctypeSystemKeyword,
  MissingWhitespaceBeforeDoctypeName,
  MissingWhitespaceBetweenAttributes,
  MissingWhitespaceBetweenDoctypePublicAndSystemIdentifiers,
  NestedComment,
  NoncharacterCharacterReference,
  NoncharacterInInputStream,
  NonVoidHtmlElementStartTagWithTrailingSolidus,
  NullCharacterReference,
  SurrogateCharacterReference,
  SurrogateInInputStream,
  UnexpectedCharacterAfterDoctypeSystemIdentifier,
  UnexpectedCharacterInAttributeName,
  UnexpectedCharacterInUnquotedAttributeValue,
  UnexpectedEqualsSignBeforeAttributeName,
  UnexpectedNullCharacter,
  UnexpectedQuestionMarkInsteadOfTagName,
  UnexpectedSolidusInTag,
  UnknownNamedCharacterReference,
  // Tree-construction errors.  The spec mostly says "this is a parse error"
  // without naming them; we name the ones the study's rules depend on and
  // use TreeConstructionGeneric for the rest.
  UnexpectedDoctype,
  UnexpectedStartTag,
  UnexpectedEndTag,
  MisnestedTag,
  StrayStartTagInHead,        // non-head element forced the head closed (HF1)
  StrayContentAfterHead,      // content before <body> implied the body (HF2)
  MultipleBodyStartTags,      // second <body> merged into the first (HF3)
  FosterParentedContent,      // content relocated out of a table (HF4)
  NestedFormStartTag,         // <form> inside a form was ignored (DE4)
  MetaHttpEquivInBody,        // meta[http-equiv] parsed outside head (DM1)
  BaseOutsideHead,            // <base> parsed outside head (DM2_1)
  MultipleBaseElements,       // more than one <base> (DM2_2)
  BaseAfterUrlUse,            // <base> after a URL-bearing element (DM2_3)
  UnexpectedForeignBreakout,  // HTML breakout element in SVG/MathML (HF5)
  StrayForeignEndTag,         // </svg> or </math> with no open foreign root
  OpenElementsAtEof,          // non-implied elements still open at EOF
  TreeConstructionGeneric,
  kCount,
};

/// Returns the spec's kebab-case identifier, e.g. "unexpected-solidus-in-tag".
std::string_view to_string(ParseError error) noexcept;

/// Byte/line/column position of an error in the original document.
struct SourcePosition {
  std::size_t offset = 0;  ///< byte offset into the raw input
  std::size_t line = 1;    ///< 1-based line number
  std::size_t column = 1;  ///< 1-based column in code points
};

/// One recorded parse error.  `detail` optionally names the element or
/// attribute involved (e.g. the duplicated attribute name).
struct ParseErrorEvent {
  ParseError code = ParseError::TreeConstructionGeneric;
  SourcePosition position;
  std::string detail;  ///< element/attribute name involved, if any
};

}  // namespace hv::html
