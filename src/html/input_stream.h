// The "Input Stream Preprocessor" stage (WHATWG HTML 13.2.3.5).
//
// Decodes UTF-8 bytes into code points, normalizes newlines (CRLF and bare
// CR become LF — "it replaces all CR characters with LF characters as CR is
// not allowed in HTML", paper section 2.1), and reports the pre-tokenization
// parse errors for noncharacters and control characters.
//
// Zero-copy design: unlike the original implementation, the stream never
// materializes a char32_t buffer.  Construction makes one cheap pre-scan
// over the raw bytes (collecting preprocessing errors, the UTF-8
// well-formedness verdict, and the code-point count — the scan that used to
// be a separate html::is_valid_utf8 pass in the pipeline); after that,
// characters are decoded lazily at the byte cursor.  consume_text_run()
// additionally hands the tokenizer whole byte runs of ordinary text so the
// hot text states skip per-character decode/re-encode entirely — for
// well-formed input the raw bytes ARE the UTF-8 re-encoding of the decoded
// characters, so appending the run is byte-identical to the old path.
//
// The viewed bytes must outlive the stream (the parser keeps the source
// buffer alive for the whole parse).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "html/errors.h"
#include "html/simd.h"

namespace hv::html {

/// A decoded, normalized character stream with lookahead and position
/// tracking, consumed by the Tokenizer.
class InputStream {
 public:
  /// Sentinel for end of file (spec's "EOF character").
  static constexpr char32_t kEof = 0xFFFFFFFF;

  /// Tokenizer text states that support run scanning; numbering matches
  /// the first five TokenizerState values.
  enum class TextRunKind : std::uint8_t {
    kData = 0,
    kRcdata = 1,
    kRawtext = 2,
    kScriptData = 3,
    kPlaintext = 4,
    // Quoted attribute values and name states (not TokenizerState-
    // aligned).  Name runs additionally stop at uppercase ASCII so the
    // tokenizer's lowercasing stays on the slow path.
    kAttrValueDoubleQuoted = 5,
    kAttrValueSingleQuoted = 6,
    kTagName = 7,
    kAttrName = 8,
  };

  explicit InputStream(std::string_view bytes);

  /// Consumes and returns the next input character, or kEof.
  char32_t consume();

  /// Pushes the last consumed character back ("reconsume" in the spec).
  /// Supports one pushback depth — every spec reconsume target consumes
  /// before reconsuming again.
  void reconsume();

  /// Returns the character `ahead` positions past the cursor without
  /// consuming (0 = the next character consume() would return).
  char32_t peek(std::size_t ahead = 0) const;

  /// Consumes and returns the maximal run of bytes that the given text
  /// state treats as ordinary characters (stops at '<', NUL, CR, state
  /// delimiters, and — for ill-formed documents — any non-ASCII byte).
  /// Returns an empty view when the next character is not ordinary or a
  /// reconsumed character is pending.
  std::string_view consume_text_run(TextRunKind kind) {
    if (has_pending_ || cursor_ >= bytes_.size()) return {};
    return scan_text_run(kind);
  }

  /// The raw bytes from the next character consume() would return
  /// (including a pending reconsumed character) to the end of input.
  /// Entity matching scans this window directly: entity names are pure
  /// ASCII, so for the matched prefix bytes and characters are 1:1.
  /// Empty when the pending character is a reconsumed EOF.
  std::string_view lookahead_bytes() const;

  /// True when the next characters match `text` ASCII case-insensitively.
  bool lookahead_matches_insensitive(std::string_view text) const;
  /// True when the next characters match `text` exactly.
  bool lookahead_matches(std::string_view text) const;
  /// Advances the cursor by `count` characters.
  void advance(std::size_t count);
  /// Bulk advance over characters known to be one-byte ASCII other than
  /// NUL, CR, and LF (entity-name bytes qualify), so bytes == characters
  /// and no line breaks or normalization can occur.  Equivalent to
  /// advance(count) including position/pushback bookkeeping.
  void advance_ascii_no_newline(std::size_t count);

  /// Source position of the character at the cursor (for error events).
  SourcePosition position() const {
    if (has_pending_) return pending_pos_;
    return {cursor_, line_, column_};
  }
  /// Source position of the most recently consumed character.
  SourcePosition last_position() const { return last_pos_; }

  bool at_eof() const {
    if (has_pending_ && pending_char_ != kEof) return false;
    return cursor_ >= bytes_.size();
  }
  /// Total number of code points in the stream (after newline
  /// normalization), computed by the construction pre-scan.
  std::size_t size() const { return char_count_; }

  /// True when the whole input was well-formed UTF-8 — the fused
  /// replacement for the pipeline's separate is_valid_utf8 pass.
  bool wellformed_utf8() const { return wellformed_; }

  /// Errors found during decoding/preprocessing (control chars and
  /// noncharacters in the input stream).
  const std::vector<ParseErrorEvent>& preprocessing_errors() const {
    return errors_;
  }

 private:
  struct Decoded {
    char32_t c = kEof;
    std::uint32_t length = 0;  // bytes, including a swallowed CRLF pair
  };

  /// Decodes the (newline-normalized) character starting at `offset`.
  Decoded decode_at(std::size_t offset) const;
  /// Backend dispatcher; the scalar variant is the golden reference the
  /// SIMD kernels are tested against (html_golden_equivalence_test).
  std::string_view scan_text_run(TextRunKind kind);
  std::string_view scan_text_run_scalar(TextRunKind kind);
  /// Construction pre-scans: scalar reference vs the vector-skip +
  /// UTF-8-DFA fast path, selected by `backend_`.
  void pre_scan();
  void pre_scan_dfa();

  std::string_view bytes_;
  simd::Backend backend_ = simd::Backend::kScalar;
  std::size_t cursor_ = 0;    // byte offset of the character at the cursor
  std::size_t line_ = 1;      // position of the character at the cursor
  std::size_t column_ = 1;
  SourcePosition last_pos_;       // most recently consumed character
  SourcePosition prev_last_pos_;  // the one before (restored on reconsume)

  // One-deep pushback for reconsume().
  bool consumed_anything_ = false;
  bool has_pending_ = false;
  char32_t pending_char_ = kEof;
  SourcePosition pending_pos_;
  char32_t last_char_ = kEof;

  // Single-entry decode cache: peek(0) followed by consume() is the
  // dominant access pattern.
  mutable std::size_t cache_offset_ = static_cast<std::size_t>(-1);
  mutable Decoded cache_;

  bool wellformed_ = true;
  std::size_t char_count_ = 0;
  std::vector<ParseErrorEvent> errors_;
};

/// Character-class helpers shared by tokenizer and tree builder
/// (spec "ASCII whitespace" is TAB, LF, FF, CR, SPACE; CR is gone after
/// preprocessing but kept here for direct string scanning).
constexpr bool is_ascii_whitespace(char32_t c) noexcept {
  return c == U'\t' || c == U'\n' || c == U'\f' || c == U'\r' || c == U' ';
}
constexpr bool is_ascii_upper_alpha(char32_t c) noexcept {
  return c >= U'A' && c <= U'Z';
}
constexpr bool is_ascii_lower_alpha(char32_t c) noexcept {
  return c >= U'a' && c <= U'z';
}
constexpr bool is_ascii_alpha(char32_t c) noexcept {
  return is_ascii_upper_alpha(c) || is_ascii_lower_alpha(c);
}
constexpr bool is_ascii_digit(char32_t c) noexcept {
  return c >= U'0' && c <= U'9';
}
constexpr bool is_ascii_alphanumeric(char32_t c) noexcept {
  return is_ascii_alpha(c) || is_ascii_digit(c);
}
constexpr bool is_ascii_hex_digit(char32_t c) noexcept {
  return is_ascii_digit(c) || (c >= U'a' && c <= U'f') ||
         (c >= U'A' && c <= U'F');
}
constexpr char32_t to_ascii_lower(char32_t c) noexcept {
  return is_ascii_upper_alpha(c) ? c + 0x20 : c;
}

/// Unicode classifications used by the preprocessor error rules.
constexpr bool is_surrogate(char32_t c) noexcept {
  return c >= 0xD800 && c <= 0xDFFF;
}
constexpr bool is_noncharacter(char32_t c) noexcept {
  return (c >= 0xFDD0 && c <= 0xFDEF) || ((c & 0xFFFE) == 0xFFFE);
}
constexpr bool is_c0_control(char32_t c) noexcept { return c <= 0x1F; }
constexpr bool is_control(char32_t c) noexcept {
  return is_c0_control(c) || (c >= 0x7F && c <= 0x9F);
}

}  // namespace hv::html
