// The "Input Stream Preprocessor" stage (WHATWG HTML 13.2.3.5).
//
// Decodes UTF-8 bytes into code points, normalizes newlines (CRLF and bare
// CR become LF — "it replaces all CR characters with LF characters as CR is
// not allowed in HTML", paper section 2.1), and reports the pre-tokenization
// parse errors for surrogates, noncharacters, and control characters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "html/errors.h"

namespace hv::html {

/// A decoded, normalized character stream with lookahead and position
/// tracking, consumed by the Tokenizer.
class InputStream {
 public:
  /// Sentinel for end of file (spec's "EOF character").
  static constexpr char32_t kEof = 0xFFFFFFFF;

  explicit InputStream(std::string_view bytes);

  /// Consumes and returns the next input character, or kEof.
  char32_t consume();

  /// Pushes the last consumed character back ("reconsume" in the spec).
  void reconsume();

  /// Returns the character `ahead` positions past the cursor without
  /// consuming (0 = the next character consume() would return).
  char32_t peek(std::size_t ahead = 0) const;

  /// True when the next characters match `text` ASCII case-insensitively.
  bool lookahead_matches_insensitive(std::string_view text) const;
  /// True when the next characters match `text` exactly.
  bool lookahead_matches(std::string_view text) const;
  /// Advances the cursor by `count` characters.
  void advance(std::size_t count);

  /// Source position of the character at the cursor (for error events).
  SourcePosition position() const;
  /// Source position of the most recently consumed character.
  SourcePosition last_position() const;

  bool at_eof() const { return cursor_ >= characters_.size(); }
  std::size_t size() const { return characters_.size(); }

  /// Errors found during decoding/preprocessing (control chars, surrogates,
  /// noncharacters in the input stream).
  const std::vector<ParseErrorEvent>& preprocessing_errors() const {
    return errors_;
  }

 private:
  SourcePosition position_at(std::size_t index) const;

  std::u32string characters_;
  std::vector<std::uint32_t> byte_offsets_;  // per character
  std::vector<std::uint32_t> line_starts_;   // character index of each line
  std::vector<ParseErrorEvent> errors_;
  std::size_t cursor_ = 0;
};

/// Character-class helpers shared by tokenizer and tree builder
/// (spec "ASCII whitespace" is TAB, LF, FF, CR, SPACE; CR is gone after
/// preprocessing but kept here for direct string scanning).
constexpr bool is_ascii_whitespace(char32_t c) noexcept {
  return c == U'\t' || c == U'\n' || c == U'\f' || c == U'\r' || c == U' ';
}
constexpr bool is_ascii_upper_alpha(char32_t c) noexcept {
  return c >= U'A' && c <= U'Z';
}
constexpr bool is_ascii_lower_alpha(char32_t c) noexcept {
  return c >= U'a' && c <= U'z';
}
constexpr bool is_ascii_alpha(char32_t c) noexcept {
  return is_ascii_upper_alpha(c) || is_ascii_lower_alpha(c);
}
constexpr bool is_ascii_digit(char32_t c) noexcept {
  return c >= U'0' && c <= U'9';
}
constexpr bool is_ascii_alphanumeric(char32_t c) noexcept {
  return is_ascii_alpha(c) || is_ascii_digit(c);
}
constexpr bool is_ascii_hex_digit(char32_t c) noexcept {
  return is_ascii_digit(c) || (c >= U'a' && c <= U'f') ||
         (c >= U'A' && c <= U'F');
}
constexpr char32_t to_ascii_lower(char32_t c) noexcept {
  return is_ascii_upper_alpha(c) ? c + 0x20 : c;
}

/// Unicode classifications used by the preprocessor error rules.
constexpr bool is_surrogate(char32_t c) noexcept {
  return c >= 0xD800 && c <= 0xDFFF;
}
constexpr bool is_noncharacter(char32_t c) noexcept {
  return (c >= 0xFDD0 && c <= 0xFDEF) || ((c & 0xFFFE) == 0xFFFE);
}
constexpr bool is_c0_control(char32_t c) noexcept { return c <= 0x1F; }
constexpr bool is_control(char32_t c) noexcept {
  return is_c0_control(c) || (c >= 0x7F && c <= 0x9F);
}

}  // namespace hv::html
