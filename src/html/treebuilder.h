// HTML tree construction (WHATWG HTML 13.2.6).
//
// Implements the insertion-mode state machine with the stack of open
// elements, the list of active formatting elements (with Noah's Ark and the
// adoption agency algorithm), foster parenting, foreign content (SVG and
// MathML) with breakout handling, and the form element pointer — i.e. all
// of the error-tolerance machinery whose silent repairs the study measures.
// Every tolerated repair is reported as an Observation (observations.h).
//
// Documented simplifications (DESIGN.md section 5): scripting is disabled
// (crawler semantics, like the paper's framework); <template> contents are
// parsed into the template element itself rather than a separate fragment;
// quirks mode only tracks the force-quirks flag and non-"html" doctype
// names (its sole tree-construction effect here is the <table>-in-<p>
// interaction).
#pragma once

#include <string>
#include <vector>

#include "html/dom.h"
#include "html/errors.h"
#include "html/observations.h"
#include "html/token.h"
#include "html/tokenizer.h"

namespace hv::html {

enum class InsertionMode : std::uint8_t {
  kInitial,
  kBeforeHtml,
  kBeforeHead,
  kInHead,
  kInHeadNoscript,
  kAfterHead,
  kInBody,
  kText,
  kInTable,
  kInTableText,
  kInCaption,
  kInColumnGroup,
  kInTableBody,
  kInRow,
  kInCell,
  kInSelect,
  kInSelectInTable,
  kInTemplate,
  kAfterBody,
  kInFrameset,
  kAfterFrameset,
  kAfterAfterBody,
  kAfterAfterFrameset,
};

class TreeBuilder final : public TokenSink {
 public:
  TreeBuilder(Document& document, std::vector<ParseErrorEvent>& errors,
              Observations& observations);

  /// The tree builder drives tokenizer state switches (RCDATA/RAWTEXT/
  /// script data/PLAINTEXT) and the CDATA-allowed flag.
  void set_tokenizer(Tokenizer* tokenizer) { tokenizer_ = tokenizer; }

  /// Scripting flag (spec: changes <noscript> parsing).  Defaults to
  /// disabled — crawler semantics, like the paper's framework; enable to
  /// model a scripting browser, where noscript content is raw text.
  void set_scripting(bool enabled) { scripting_ = enabled; }

  void process_token(Token&& token) override;

  /// Switches the builder into HTML-fragment mode (spec "parsing HTML
  /// fragments"): a root <html> element is created, the insertion mode is
  /// reset as if `context_tag` were the context element, and the document
  /// structure checks (head/body implication) are disabled.  Call before
  /// the first token.
  void init_fragment(std::string_view context_tag);

  bool finished() const noexcept { return stopped_; }

 private:
  struct FormattingEntry {
    Element* element = nullptr;  // nullptr => marker
    Token token;                 // original token, for cloning
  };

  // --- dispatch ----------------------------------------------------------
  void dispatch(Token& token);
  bool should_use_foreign_rules(const Token& token) const;
  void process_in_foreign_content(Token& token);
  void process_by_mode(Token& token, InsertionMode mode);

  // --- per-mode handlers ---------------------------------------------------
  void mode_initial(Token& token);
  void mode_before_html(Token& token);
  void mode_before_head(Token& token);
  void mode_in_head(Token& token);
  void mode_in_head_noscript(Token& token);
  void mode_after_head(Token& token);
  void mode_in_body(Token& token);
  void mode_text(Token& token);
  void mode_in_table(Token& token);
  void mode_in_table_text(Token& token);
  void mode_in_caption(Token& token);
  void mode_in_column_group(Token& token);
  void mode_in_table_body(Token& token);
  void mode_in_row(Token& token);
  void mode_in_cell(Token& token);
  void mode_in_select(Token& token);
  void mode_in_select_in_table(Token& token);
  void mode_in_template(Token& token);
  void mode_after_body(Token& token);
  void mode_in_frameset(Token& token);
  void mode_after_frameset(Token& token);
  void mode_after_after_body(Token& token);
  void mode_after_after_frameset(Token& token);

  void in_body_start_tag(Token& token);
  void in_body_end_tag(Token& token);
  void in_body_any_other_end_tag(Token& token);
  void in_body_characters(Token& token);

  // Wrappers over the spec's element-category sets (defined in
  // treebuilder.cc) so the other translation units can use them.
  bool special_is(const Element* element) const;
  bool foreign_breakout_check(const Token& token) const;
  bool is_mathml_text_ip(const Element* element) const;
  bool is_html_ip(const Element* element) const;

  // --- insertion helpers ---------------------------------------------------
  struct InsertionLocation {
    Node* parent = nullptr;
    Node* before = nullptr;  // insert before this child; nullptr = append
  };
  InsertionLocation appropriate_insertion_location(Element* override_target =
                                                       nullptr);
  Element* insert_html_element(const Token& token);
  Element* insert_foreign_element(const Token& token, Namespace ns);
  Element* create_element_for_token(const Token& token, Namespace ns);
  void insert_character_data(std::string_view data);
  void insert_comment(const Token& token, Node* parent = nullptr);
  void generic_raw_text(const Token& token);
  void generic_rcdata(const Token& token);

  // --- stack of open elements ---------------------------------------------
  Element* current_node() const {
    return open_elements_.empty() ? nullptr : open_elements_.back();
  }
  Element* adjusted_current_node() const { return current_node(); }
  void push_open(Element* element) { open_elements_.push_back(element); }
  void pop_open();
  void pop_until_inclusive(std::string_view tag);
  bool stack_contains(std::string_view tag) const;
  bool stack_contains(const Element* element) const;
  void remove_from_stack(const Element* element);

  bool has_element_in_scope(std::string_view tag) const;
  bool has_element_in_scope(const Element* element) const;
  bool has_element_in_list_item_scope(std::string_view tag) const;
  bool has_element_in_button_scope(std::string_view tag) const;
  bool has_element_in_table_scope(std::string_view tag) const;
  bool has_element_in_select_scope(std::string_view tag) const;

  void generate_implied_end_tags(std::string_view except = {});
  void generate_all_implied_end_tags_thoroughly();
  void close_p_element();
  void close_cell();
  void clear_stack_to_table_context();
  void clear_stack_to_table_body_context();
  void clear_stack_to_table_row_context();
  void reset_insertion_mode();

  // --- active formatting elements -------------------------------------------
  void push_formatting(Element* element, const Token& token);
  void push_formatting_marker();
  void reconstruct_active_formatting();
  void clear_formatting_to_marker();
  Element* formatting_element_after_marker(std::string_view tag) const;
  void remove_formatting_entry(const Element* element);
  bool adoption_agency(Token& token);  // returns false => act as any-other

  // --- misc helpers ----------------------------------------------------------
  void error(ParseError code, const Token& token,
             std::string_view detail = {});
  void observe(ObservationKind kind, const Token& token,
               std::string_view detail = {});
  void switch_tokenizer_for(const Token& start_tag);
  void update_cdata_flag();
  void acknowledge_self_closing(Token& token);
  void stop_parsing(const Token& eof_token);
  void note_url_bearing(const Token& token);
  void merge_attributes_into(Element* element, const Token& token);
  void handle_base_start_tag(const Token& token, bool in_head_section);
  void handle_meta_position_check(const Token& token, bool in_head_section);

  Document& document_;
  std::vector<ParseErrorEvent>& errors_;
  Observations& observations_;
  Tokenizer* tokenizer_ = nullptr;

  InsertionMode mode_ = InsertionMode::kInitial;
  InsertionMode original_mode_ = InsertionMode::kInBody;
  /// Flight-recorder dedup: last insertion mode recorded as a kTreeMode
  /// event (-1 = none yet) and a change counter for the 1-in-8 emit
  /// throttle; see process_by_mode.
  int fdr_last_mode_ = -1;
  std::uint32_t fdr_mode_changes_ = 0;
  std::vector<InsertionMode> template_modes_;

  std::vector<Element*> open_elements_;
  std::vector<FormattingEntry> formatting_;

  Element* head_element_ = nullptr;
  Element* form_element_ = nullptr;
  bool fragment_ = false;
  bool scripting_ = false;
  std::string fragment_context_;  ///< context element's tag name

  bool frameset_ok_ = true;
  bool foster_parenting_ = false;
  bool quirks_mode_ = false;
  bool stopped_ = false;
  bool ignore_next_lf_ = false;
  bool head_was_implicit_ = false;
  bool reported_implicit_head_content_ = false;
  bool head_explicitly_closed_ = false;
  /// Source-level "inside the head section" flag for the DM1/DM2 position
  /// checks: true between the head's opening (explicit or implied with
  /// content) and the literal </head>, <body>, or <frameset> token.  This
  /// matches the paper's source-position semantics even when a stray
  /// element already forced the parser out of the in-head insertion mode.
  bool source_head_open_ = false;
  bool seen_base_element_ = false;
  bool seen_url_bearing_ = false;
  /// Set when a content token implicitly closed the head and was already
  /// counted as HF1 — the immediately following implied <body> must not
  /// double-count as HF2.
  bool suppress_next_body_implied_ = false;
  /// Literal <body> start-tag tokens seen; HF3 ("multiple body elements")
  /// is a source-level property, so it needs two *tokens*, not merely the
  /// merge of an explicit tag into an implied body.
  int body_start_tokens_ = 0;

  std::string pending_table_text_;
  SourcePosition pending_table_text_position_;
  bool pending_table_text_has_nonspace_ = false;

  // Reprocessing queue depth guard (the spec reprocesses tokens; a bug here
  // would loop forever on adversarial input).
  int reprocess_depth_ = 0;
};

}  // namespace hv::html
