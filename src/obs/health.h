// hv::obs — run-health observatory layered on the metrics/trace/log core.
//
// The primitives in metrics.h answer "how many / how fast" but not
// "is this run healthy right now" or "which input made it misbehave".
// This header adds the run-granularity layer:
//
//   * HeartbeatBoard + watchdog: every pipeline worker registers a slot
//     and beats on progress; a background thread flags workers that go
//     silent for longer than `stall_after_s` (one StallEvent + WARN log
//     per silence episode, cleared by the next beat).
//   * SlowPageTracker: a top-K tracker recording the (domain, snapshot,
//     WARC offset, latency, byte size) of the slowest pages, so "why was
//     this run slow" has named suspects instead of a fat histogram tail.
//   * Stage watermarks: begin/advance/end bookkeeping per pipeline stage
//     with throughput and ETA derived from the live watermark.
//   * Run report + live snapshot: `write_report` emits the
//     self-describing run_report.json (config hash, stage durations,
//     percentile tables from the registry's sketches, drop reasons, slow
//     pages, worker stats, stall events); a reporter thread atomically
//     rewrites a small live snapshot file that `hv monitor` tails.
//
// Under HV_OBS_DISABLED no thread is ever started, every mutation is a
// no-op, and the report/live files degrade to a `"obs_disabled": true`
// marker so downstream tooling (hv monitor, hv stats --compare) can
// detect the configuration instead of misreading zeros.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace hv::obs {

class Registry;
class TimeseriesSampler;

/// 64-bit FNV-1a — the config hash in run reports (stable across runs
/// and platforms, unlike std::hash).
std::uint64_t fnv1a64(std::string_view text) noexcept;
std::string hex64(std::uint64_t value);

// --- slow pages -------------------------------------------------------------

struct SlowPage {
  std::string domain;
  std::string snapshot;
  std::uint64_t warc_offset = 0;
  double seconds = 0.0;  ///< parse+check latency
  std::size_t bytes = 0; ///< HTTP message size
  /// Profiler exemplar: the ';'-joined scope path with the most samples
  /// while this page was checked ("" when profiling was off or no
  /// sample landed in the window).  See obs/prof.h.
  std::string hottest_scope;
};

/// Top-K slowest pages.  The hot path is one relaxed atomic load when
/// the candidate is faster than the current K-th page; the mutex is only
/// taken for genuine admissions.
class SlowPageTracker {
 public:
  explicit SlowPageTracker(std::size_t capacity = 16);

  /// True when `seconds` would currently clear the admission bar — the
  /// pipeline's cheap pre-check before computing a profiler exemplar for
  /// the record() call.  Racy by design (the bar may move), so record()
  /// re-checks under the lock.
  bool would_admit(double seconds) const noexcept;

  /// Returns true when the page was admitted into the top-K.
  bool record(std::string_view domain, std::string_view snapshot,
              std::uint64_t warc_offset, double seconds, std::size_t bytes,
              std::string_view hottest_scope = {});

  /// Slowest first.
  std::vector<SlowPage> worst() const;
  std::size_t capacity() const noexcept { return capacity_; }
  void reset();

 private:
  const std::size_t capacity_;
  std::atomic<double> threshold_{0.0};  ///< admission bar once full
  mutable std::mutex mutex_;
  std::vector<SlowPage> pages_;  ///< min-heap on seconds
};

// --- heartbeats -------------------------------------------------------------

struct WorkerStats {
  std::string name;
  std::string stage;
  std::uint64_t items = 0;
  std::uint64_t beats = 0;
  bool active = false;
};

class HeartbeatBoard {
 public:
  /// Registers a worker slot; the returned handle addresses `beat` and
  /// `deregister`.  Slots persist for the board's lifetime so the final
  /// report still lists finished workers.
  int register_worker(std::string name, std::string stage);
  void beat(int handle, std::uint64_t items_done) noexcept;
  void deregister(int handle) noexcept;

  std::vector<WorkerStats> stats() const;

 private:
  friend class RunHealth;
  struct Slot {
    std::string name;
    std::string stage;
    std::atomic<std::uint64_t> items{0};
    std::atomic<std::uint64_t> beats{0};
    std::atomic<std::int64_t> last_beat_us{0};  ///< steady-clock us
    std::atomic<bool> active{false};
    std::atomic<bool> flagged{false};  ///< stall reported this silence
  };

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

struct StallEvent {
  std::string worker;
  std::string stage;
  double stalled_seconds = 0.0;
  std::uint64_t items_done = 0;
};

// --- stages -----------------------------------------------------------------

struct StageRecord {
  std::string stage;
  std::string snapshot;
  double seconds = 0.0;
  std::uint64_t items = 0;
  bool finished = false;
};

/// Live view of the most recent unfinished stage (for `hv monitor`).
struct ProgressView {
  std::string stage;
  std::string snapshot;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  double elapsed_s = 0.0;
  double rate = 0.0;   ///< items/s over the stage so far
  double eta_s = 0.0;  ///< remaining items at the observed rate
  bool active = false;
};

// --- the observatory --------------------------------------------------------

struct RunHealthOptions {
  double watchdog_interval_s = 0.25;  ///< scan cadence
  double stall_after_s = 5.0;         ///< silence that counts as a stall
  /// Silence that counts as a *hard* stall: the watchdog escalates into
  /// a crash-style forensic report (crash::write_report_now) without
  /// killing the run.  0 disables escalation.
  double hard_stall_after_s = 0.0;
  std::size_t slow_page_capacity = 16;
  std::filesystem::path live_path;  ///< live snapshot file ("" = off)
  double live_period_s = 0.5;       ///< snapshot rewrite cadence
  /// Metric-delta series ("" = off); see obs/timeseries.h.
  std::filesystem::path timeseries_path;
  double timeseries_period_s = 0.5;
};

class RunHealth {
 public:
  explicit RunHealth(RunHealthOptions options = {});
  ~RunHealth();

  RunHealth(const RunHealth&) = delete;
  RunHealth& operator=(const RunHealth&) = delete;

  /// Free-form config rendering; its FNV-1a hash identifies the run in
  /// reports and live snapshots.
  void set_config_summary(std::string summary);

  /// Starts the watchdog and (when a live path is set) reporter threads.
  /// Idempotent.  Under HV_OBS_DISABLED starts nothing but still writes
  /// the disabled marker to the live path so `hv monitor` can explain.
  void start();
  /// Stops the threads and writes a final `"complete": true` snapshot.
  void stop();

  HeartbeatBoard& heartbeats() noexcept { return board_; }
  SlowPageTracker& slow_pages() noexcept { return slow_; }

  /// Stage watermarks.  begin returns a handle for advance/end so
  /// overlapped snapshot runs track their stages independently.
  std::size_t stage_begin(std::string stage, std::string snapshot,
                          std::uint64_t total_items);
  void stage_advance(std::size_t handle, std::uint64_t items) noexcept;
  void stage_end(std::size_t handle);

  std::vector<StageRecord> stage_records() const;
  ProgressView progress() const;
  std::vector<StallEvent> stall_events() const;

  /// run_report.json: config hash, counters, stages, percentiles (from
  /// `registry`'s histogram sketches), slow pages, workers, stalls.
  void write_report(std::ostream& out, const Registry& registry) const;
  /// The small live snapshot `hv monitor` renders.
  void write_live_snapshot(std::ostream& out, bool complete) const;

  const RunHealthOptions& options() const noexcept { return options_; }

 private:
  struct StageState {
    std::string stage;
    std::string snapshot;
    std::uint64_t total = 0;
    std::atomic<std::uint64_t> done{0};
    std::chrono::steady_clock::time_point start;
    double seconds = 0.0;
    bool finished = false;
    std::uint16_t fdr_scope = 0;  ///< interned "stage:snapshot"
  };

  void watchdog_loop();
  void reporter_loop();
  void watchdog_scan();
  bool write_live_file(bool complete) const;

  RunHealthOptions options_;
  HeartbeatBoard board_;
  SlowPageTracker slow_;

  mutable std::mutex config_mutex_;
  std::string config_summary_;

  mutable std::mutex stage_mutex_;
  std::vector<std::unique_ptr<StageState>> stages_;

  mutable std::mutex stall_mutex_;
  std::vector<StallEvent> stalls_;

  std::mutex thread_mutex_;
  std::condition_variable wake_;
  bool running_ = false;
  std::thread watchdog_;
  std::thread reporter_;

  std::atomic<bool> hard_stall_reported_{false};
  std::unique_ptr<TimeseriesSampler> sampler_;
};

}  // namespace hv::obs
