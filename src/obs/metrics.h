// hv::obs — the metrics registry behind every `hv_*` series.
//
// Design goals (DESIGN.md "Observability"):
//   * lock-cheap hot path: a Counter/Gauge/Histogram handle is a stable
//     reference; incrementing it is a single relaxed atomic op, no mutex.
//     The registry mutex is only taken when a series is first resolved
//     (`family.with(...)`) or at export time — callers cache handles.
//   * labeled families for per-rule / per-snapshot / per-stage series,
//     named `hv_<subsystem>_<name>{label="value"}`.
//   * exportable as Prometheus text format (`write_prometheus`) and JSON
//     (`write_json`), both with deterministic ordering.
//
// Compiling with -DHV_OBS_DISABLED turns every mutation (inc/set/observe
// and the ScopedTimer's clock reads) into a no-op while keeping the API,
// so instrumented code builds unchanged; see tools/check_noop_build.sh.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sketch.h"

namespace hv::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#ifndef HV_OBS_DISABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (can go up and down).
class Gauge {
 public:
  void set(double v) noexcept {
#ifndef HV_OBS_DISABLED
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(double v) noexcept {
#ifndef HV_OBS_DISABLED
    value_.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  /// Raises the gauge to `v` if above the current value (CAS loop) —
  /// high-watermark gauges like peak arena bytes.
  void set_max(double v) noexcept {
#ifndef HV_OBS_DISABLED
    double current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket distribution: per-bucket atomic counts plus sum/count,
/// paired with a log-bucketed QuantileSketch so percentile queries carry
/// a bounded relative error instead of bucket-interpolation guesswork.
/// Buckets are upper bounds; values above the last bound land in the
/// implicit +Inf bucket.  All mutation is relaxed atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// the last entry being the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  /// Sketch-backed quantile estimate (q in [0,1]) with bounded relative
  /// error (sketch().relative_accuracy()); 0 when empty.  Falls back to
  /// bucket interpolation if the sketch disagrees about the count (only
  /// possible mid-race).
  double quantile(double q) const;
  /// The underlying quantile sketch (mergeable across histograms).
  const QuantileSketch& sketch() const noexcept { return sketch_; }
  void reset() noexcept;

 private:
  double bucket_quantile(double q) const;

  std::vector<double> bounds_;  ///< sorted, deduplicated upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
  QuantileSketch sketch_;
};

/// Default latency buckets (seconds): 1µs .. 10s in a 1-2.5-5 ladder.
/// Shared by every `*_seconds` histogram so series stay comparable.
const std::vector<double>& default_time_buckets();

/// RAII wall-clock timer observing its lifetime (in seconds) into a
/// histogram.  Under HV_OBS_DISABLED no clock is ever read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept
#ifndef HV_OBS_DISABLED
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {
  }
#else
  {
    (void)histogram;
  }
#endif

  ~ScopedTimer() {
#ifndef HV_OBS_DISABLED
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->observe(std::chrono::duration<double>(elapsed).count());
#endif
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
#ifndef HV_OBS_DISABLED
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
#endif
};

namespace detail {

/// Shared family machinery: a named series set keyed by label values.
/// `Metric` must be default-constructible (Counter/Gauge) or constructed
/// via the family's factory (Histogram).
template <typename Metric>
class Family {
 public:
  const std::string& name() const noexcept { return name_; }
  const std::string& help() const noexcept { return help_; }
  const std::vector<std::string>& label_keys() const noexcept {
    return keys_;
  }

  /// Visits every series as (label_values, metric) in label order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [labels, metric] : series_) fn(labels, *metric);
  }

  /// Zeroes every series in the family (handles stay valid).
  void reset_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [labels, metric] : series_) metric->reset();
  }

 protected:
  Family(std::string name, std::string help, std::vector<std::string> keys)
      : name_(std::move(name)), help_(std::move(help)),
        keys_(std::move(keys)) {}

  template <typename Factory>
  Metric& resolve(std::initializer_list<std::string_view> values,
                  const Factory& factory) {
    std::vector<std::string> key(values.begin(), values.end());
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = series_.find(key);
    if (it == series_.end()) {
      it = series_.emplace(std::move(key), factory()).first;
    }
    return *it->second;
  }

  mutable std::mutex mutex_;
  std::string name_;
  std::string help_;
  std::vector<std::string> keys_;
  std::map<std::vector<std::string>, std::unique_ptr<Metric>> series_;
};

}  // namespace detail

class CounterFamily : public detail::Family<Counter> {
 public:
  /// Stable handle for one label-value combination; callers cache it.
  /// The number of values must match the family's label keys.
  Counter& with(std::initializer_list<std::string_view> values);

 private:
  friend class Registry;
  using Family::Family;
};

class GaugeFamily : public detail::Family<Gauge> {
 public:
  Gauge& with(std::initializer_list<std::string_view> values);

 private:
  friend class Registry;
  using Family::Family;
};

class HistogramFamily : public detail::Family<Histogram> {
 public:
  Histogram& with(std::initializer_list<std::string_view> values);
  const std::vector<double>& bounds() const noexcept { return bounds_; }

 private:
  friend class Registry;
  HistogramFamily(std::string name, std::string help,
                  std::vector<std::string> keys, std::vector<double> bounds)
      : Family(std::move(name), std::move(help), std::move(keys)),
        bounds_(std::move(bounds)) {}

  std::vector<double> bounds_;
};

/// The registry: owns families, hands out stable metric handles, exports
/// snapshots.  Registering an existing name returns the existing family
/// (label keys must match; throws std::invalid_argument otherwise).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  CounterFamily& counter_family(std::string_view name, std::string_view help,
                                std::vector<std::string> label_keys);
  GaugeFamily& gauge_family(std::string_view name, std::string_view help,
                            std::vector<std::string> label_keys);
  HistogramFamily& histogram_family(std::string_view name,
                                    std::string_view help,
                                    std::vector<std::string> label_keys,
                                    std::vector<double> bounds);

  /// Unlabeled conveniences (a family with no label keys, one series).
  Counter& counter(std::string_view name, std::string_view help);
  Gauge& gauge(std::string_view name, std::string_view help);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds);

  /// Prometheus text exposition format (HELP/TYPE + one line per series).
  void write_prometheus(std::ostream& out) const;
  std::string prometheus_text() const;

  /// JSON snapshot: {"counters": [...], "gauges": [...],
  /// "histograms": [...]}, each entry {name, labels, ...}.
  void write_json(std::ostream& out) const;
  std::string json_text() const;

  /// Test/query helper: the value of a counter (count), gauge (value), or
  /// histogram (observation count) series.  `label_values` in key order.
  std::optional<double> value(
      std::string_view name,
      std::initializer_list<std::string_view> label_values = {}) const;

  /// Distinct values of `label_key` across one family's series (sorted).
  std::vector<std::string> label_values(std::string_view name,
                                        std::string_view label_key) const;

  /// Visits every counter series in export order (family name, then
  /// label order) — the timeseries sampler's delta source.
  void visit_counters(
      const std::function<void(const std::string& name,
                               const std::vector<std::string>& label_values,
                               std::uint64_t value)>& fn) const;

  /// Visits every histogram series in export order (family name, then
  /// label order) — the run-report percentile-table builder.
  void visit_histograms(
      const std::function<void(const std::string& name,
                               const std::vector<std::string>& label_keys,
                               const std::vector<std::string>& label_values,
                               const Histogram& histogram)>& fn) const;

  /// Zeroes every series (families and handles stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<CounterFamily>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<GaugeFamily>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramFamily>, std::less<>>
      histograms_;
};

/// The process-wide registry every subsystem's instrumentation uses.
Registry& default_registry();

}  // namespace hv::obs
