// hv::obs::prof — a low-overhead in-process sampling profiler.
//
// The observatory (health.h) says *that* a run is slow; this layer says
// *why*.  A per-thread POSIX interval timer (`timer_create` on the
// thread CPU clock delivering SIGPROF via SIGEV_THREAD_ID) samples each
// registered thread at `hz`; on platforms without per-thread timers a
// sampler thread polls the same scope state at the same rate.  Either
// way a sample is just a copy of the thread's *attribution-scope stack*
// — a thread-local array of interned scope ids maintained by
// HV_PROF_SCOPE RAII tags — into a signal-safe single-producer ring.
// There is no libunwind, no symbolization, no allocation and no lock
// anywhere near the signal handler: scope names live in a static
// interned table and the handler only reads relaxed atomics and bumps a
// ring cursor (dropping, and counting the drop, when the ring is full).
//
// Attribution has two levels:
//   * stack frames — coarse pipeline structure (`crawl`, `warc_read`,
//     `check`, `parse`, `rules`, `store`), pushed/popped by
//     HV_PROF_SCOPE at scope granularity;
//   * the leaf slot — a single thread-local scope id for fine-grained
//     state that changes far too often to push/pop (tokenizer state
//     groups, tree-builder insertion modes, checker rules).  Samples
//     append the leaf as the deepest frame.  set_leaf is one relaxed
//     TLS store; LeafScope save/restores it across nested phases.
//
// Exports: flamegraph.pl-compatible collapsed stacks (write_folded), a
// `profile` object for run_report.json (write_profile_json), and
// tail-latency exemplars — thread_cursor()/hottest_path_since() let the
// pipeline attach "the hottest scope while this page was checked" to
// SlowPageTracker records.  charge_bytes() adds arena/interner
// allocation pressure to the same scope tree.
//
// Under HV_OBS_DISABLED every probe, the rings and the timer setup
// compile to no-ops; Profiler::start reports the profiler unavailable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hv::obs::prof {

/// Interned scope identifier.  Id 0 is reserved for "(unattributed)" —
/// a sample taken outside any scope.
using ScopeId = std::uint16_t;
inline constexpr ScopeId kNoScope = 0;

/// Depth limits.  kMaxDepth stack frames plus the leaf slot fit in one
/// ring slot; deeper nesting is truncated (and never happens with the
/// scopes this codebase registers — the deepest real path is 5).
inline constexpr std::size_t kMaxDepth = 12;
inline constexpr std::size_t kSlotFrames = kMaxDepth + 1;

/// Ring capacity per thread (samples).  At the default 99 Hz this is
/// ~80 s of backlog; the collector drains every ~250 ms.
inline constexpr std::size_t kRingCapacity = 8192;

/// Byte-attribution table width; ids beyond it charge to kNoScope.
inline constexpr std::size_t kMaxScopes = 512;

/// Interns `name`, returning its stable id.  Thread-safe; repeated
/// calls with the same name return the same id.  Call sites cache the
/// result in a function-local static (see HV_PROF_SCOPE).
ScopeId intern_scope(std::string_view name);

/// Name for an id ("(unattributed)" for kNoScope, "" for unknown ids).
std::string scope_name(ScopeId id);

/// Async-signal-safe variant: a pointer into an immutable published
/// name table, truncated to 47 chars ("" for unknown ids).  The crash
/// writer (obs/crash.h) uses this to dump scope stacks from a signal
/// handler; everything else should prefer scope_name.
const char* scope_name_raw(ScopeId id) noexcept;

/// True when the profiler is compiled in (i.e. not HV_OBS_DISABLED).
constexpr bool available() noexcept {
#ifdef HV_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

namespace detail {

/// The per-thread scope state the signal handler reads.  All fields are
/// relaxed atomics: the same-thread handler is ordered by
/// atomic_signal_fence; the cross-thread polling sampler tolerates a
/// torn-in-time (but never torn-in-value) stack — a sample is at worst
/// attributed to the adjacent scope.
struct ScopeStack {
  std::atomic<ScopeId> frames[kMaxDepth];
  std::atomic<std::uint32_t> depth{0};
  std::atomic<ScopeId> leaf{kNoScope};
};

#ifndef HV_OBS_DISABLED
inline thread_local ScopeStack tls_stack;
#endif

}  // namespace detail

/// Pushes `id` for the current lexical scope.  Prefer HV_PROF_SCOPE.
class Scope {
 public:
  explicit Scope(ScopeId id) noexcept {
#ifndef HV_OBS_DISABLED
    detail::ScopeStack& s = detail::tls_stack;
    const std::uint32_t d = s.depth.load(std::memory_order_relaxed);
    if (d < kMaxDepth) s.frames[d].store(id, std::memory_order_relaxed);
    // Frame must be visible to a same-thread signal before depth grows.
    std::atomic_signal_fence(std::memory_order_release);
    s.depth.store(d + 1, std::memory_order_relaxed);
#else
    (void)id;
#endif
  }
  ~Scope() {
#ifndef HV_OBS_DISABLED
    detail::ScopeStack& s = detail::tls_stack;
    const std::uint32_t d = s.depth.load(std::memory_order_relaxed);
    if (d > 0) s.depth.store(d - 1, std::memory_order_relaxed);
#endif
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

/// Sets the fine-grained attribution leaf (one relaxed TLS store).
inline void set_leaf(ScopeId id) noexcept {
#ifndef HV_OBS_DISABLED
  detail::tls_stack.leaf.store(id, std::memory_order_relaxed);
#else
  (void)id;
#endif
}

inline ScopeId current_leaf() noexcept {
#ifndef HV_OBS_DISABLED
  return detail::tls_stack.leaf.load(std::memory_order_relaxed);
#else
  return kNoScope;
#endif
}

/// Save/restore wrapper around set_leaf for nested fine-grained phases
/// (the tree builder runs inside the tokenizer's leaf, checker rules
/// inside the rule loop's).
class LeafScope {
 public:
  explicit LeafScope(ScopeId id) noexcept : saved_(current_leaf()) {
    set_leaf(id);
  }
  ~LeafScope() { set_leaf(saved_); }
  LeafScope(const LeafScope&) = delete;
  LeafScope& operator=(const LeafScope&) = delete;

 private:
  ScopeId saved_;
};

/// RAII stack frame: `HV_PROF_SCOPE("crawl");` — interns once
/// (function-local static), then one relaxed store + fence per entry.
#ifndef HV_OBS_DISABLED
#define HV_PROF_SCOPE_CAT2(a, b) a##b
#define HV_PROF_SCOPE_CAT(a, b) HV_PROF_SCOPE_CAT2(a, b)
#define HV_PROF_SCOPE(name)                                               \
  static const ::hv::obs::prof::ScopeId HV_PROF_SCOPE_CAT(                \
      hv_prof_scope_id_, __LINE__) = ::hv::obs::prof::intern_scope(name); \
  const ::hv::obs::prof::Scope HV_PROF_SCOPE_CAT(hv_prof_scope_,          \
                                                 __LINE__)(               \
      HV_PROF_SCOPE_CAT(hv_prof_scope_id_, __LINE__))
#else
#define HV_PROF_SCOPE(name) ((void)0)
#endif

// --- thread registration ----------------------------------------------------

/// Registers the current thread with the profiler for its lifetime
/// (pipeline workers, the CLI main thread, benches).  Arms the
/// per-thread CPU timer when a profiling session is active; rings are
/// allocated lazily so idle (unprofiled) runs pay one small registry
/// entry and nothing else.  Nested guards on the same thread are no-ops.
class ThreadGuard {
 public:
  explicit ThreadGuard(std::string name);
  ~ThreadGuard();
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;

 private:
  void* state_ = nullptr;
};

/// Charges `bytes` of allocation pressure to the current thread's
/// attribution scope (the leaf when set, else the top stack frame).
/// No-op on unregistered threads.
void charge_bytes(std::size_t bytes) noexcept;

// --- exemplars --------------------------------------------------------------

/// Current thread's ring write cursor (0 when unregistered/idle).  Take
/// it before a unit of work; hottest_path_since() then names the scope
/// path with the most samples in [cursor, now) — the exemplar attached
/// to slow-page records.  Empty string when no samples landed.
std::uint64_t thread_cursor() noexcept;
std::string hottest_path_since(std::uint64_t cursor);

// --- the profiler -----------------------------------------------------------

struct ProfileOptions {
  int hz = 99;  ///< sampling rate, clamped to [1, 10000]
  /// Test/portability hook: use the polling sampler thread even where
  /// per-thread CPU timers exist.
  bool force_polling = false;
  double drain_period_s = 0.25;  ///< collector cadence
};

struct ProfileEntry {
  std::string path;  ///< ';'-joined scope names, root first
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};

struct ByteEntry {
  std::string scope;
  std::uint64_t bytes = 0;
};

struct ProfileSnapshot {
  bool enabled = false;  ///< a profiling session ran (or is running)
  int hz = 0;
  std::uint64_t samples = 0;
  std::uint64_t drops = 0;
  std::vector<ProfileEntry> entries;  ///< every tree node, sorted by path
  std::vector<ByteEntry> bytes;       ///< per-scope bytes, sorted by name
};

/// One profiling session at a time; samples merge across threads at
/// drain time.  All methods are thread-safe.  Under HV_OBS_DISABLED
/// start() returns false and everything else is inert.
class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Arms timers (or starts the polling sampler) for every registered
  /// thread and starts the collector.  False when already running or
  /// when the build has the profiler compiled out.
  bool start(const ProfileOptions& options = {});
  /// Disarms, joins the collector, drains every ring.  Aggregates are
  /// kept for snapshot()/write_* until reset().
  void stop();
  bool running() const noexcept;
  int hz() const noexcept;

  /// Samples drained so far (cheap; the collector keeps it fresh).
  std::uint64_t sample_count() const noexcept;
  std::uint64_t drop_count() const noexcept;

  /// Drains all rings, then returns the merged view.
  ProfileSnapshot snapshot();

  /// flamegraph.pl-compatible collapsed stacks: `a;b;c <count>` lines,
  /// sorted by path for determinism.
  void write_folded(std::ostream& out);

  /// The `profile` object embedded in run_report.json: enabled/hz/
  /// samples/drops, top scopes by self share, bytes by scope.
  void write_profile_json(std::ostream& out);

  /// Clears aggregates, per-thread rings/bytes and session state;
  /// registered threads stay registered.  Not callable mid-session.
  void reset();

  /// Test hook: folds a pre-resolved path directly into the aggregate
  /// (marks the profiler enabled), bypassing rings and timers.
  void record_synthetic_sample(const std::vector<std::string>& path,
                               std::uint64_t weight = 1);

  /// Test hook: takes one sample of the current thread exactly as the
  /// signal handler would (ring append or drop).  False when the thread
  /// is unregistered or rings are unallocated (no session ever started).
  bool sample_current_thread_for_test();

 private:
  friend class ThreadGuard;
  void* attach_current_thread(std::string name);
  void detach_current_thread(void* state);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-wide instance all built-in instrumentation uses.
Profiler& profiler();

}  // namespace hv::obs::prof
