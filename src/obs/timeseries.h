// hv::obs — metrics time series: periodic counter deltas on disk.
//
// run_report.json is a post-mortem total and run_live.json is a single
// moving point; neither can answer "what did the page rate look like
// over the run" after the fact.  The sampler appends one JSON line per
// tick to `timeseries.jsonl`:
//
//   {"t_s": 12.5, "dt_s": 0.5, "counters": {"hv_pipeline_pages_checked_total": 731, ...}}
//
// where each value is the family's delta over the tick, summed across
// label sets (per-family rates are what sparklines want; the full
// labeled breakdown stays in the registry exports).  Families with a
// zero delta are omitted, so idle ticks cost a few bytes.  `hv monitor
// --follow` tails the file and renders rate sparklines; each tick also
// refreshes the crash handler's pre-rendered metrics snapshot
// (crash.h), which is how crash reports get near-live counters without
// the handler touching the registry.
//
// Under HV_OBS_DISABLED start() returns false and no file is written.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace hv::obs {

class Registry;

struct TimeseriesOptions {
  std::filesystem::path path;  ///< timeseries.jsonl ("" = disabled)
  double period_s = 0.5;       ///< sampling cadence
};

/// Appends metric deltas to a JSONL file on a background thread.
/// start/stop are idempotent; stop() takes a final sample so short
/// runs still leave at least one line behind.
class TimeseriesSampler {
 public:
  explicit TimeseriesSampler(Registry& registry);
  ~TimeseriesSampler();
  TimeseriesSampler(const TimeseriesSampler&) = delete;
  TimeseriesSampler& operator=(const TimeseriesSampler&) = delete;

  /// False when the path is empty, the file can't be opened, or the
  /// build has observability compiled out.
  bool start(const TimeseriesOptions& options);
  void stop();
  bool running() const noexcept;

  /// Takes one sample immediately (test hook; also used by stop()).
  void sample_now();

 private:
  void loop();
  void sample_locked();

  Registry& registry_;
  TimeseriesOptions options_;
  std::map<std::string, std::uint64_t> previous_;
  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point last_time_;

  std::mutex mutex_;
  std::condition_variable wake_;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace hv::obs
