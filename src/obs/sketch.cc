#include "obs/sketch.h"

#include <algorithm>
#include <cmath>

namespace hv::obs {
namespace {

// Tracked value range: below kMinTrackable clamps into the lowest grid
// bucket, above kMaxTrackable into the highest.  For latencies observed
// in seconds this spans nanoseconds to ~30 years.
constexpr double kMinTrackable = 1e-9;
constexpr double kMaxTrackable = 1e9;

}  // namespace

QuantileSketch::QuantileSketch(double relative_accuracy)
    : alpha_(std::clamp(relative_accuracy, 1e-4, 0.5)),
      gamma_((1.0 + alpha_) / (1.0 - alpha_)),
      inv_log_gamma_(1.0 / std::log(gamma_)) {
  min_index_ = static_cast<int>(
      std::floor(std::log(kMinTrackable) * inv_log_gamma_));
  max_index_ =
      static_cast<int>(std::ceil(std::log(kMaxTrackable) * inv_log_gamma_));
  size_ = static_cast<std::size_t>(max_index_ - min_index_ + 1);
#ifndef HV_OBS_DISABLED
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(size_);
  for (std::size_t i = 0; i < size_; ++i) buckets_[i] = 0;
#endif
}

int QuantileSketch::index_for(double value) const noexcept {
  const int index =
      static_cast<int>(std::ceil(std::log(value) * inv_log_gamma_));
  return std::clamp(index, min_index_, max_index_);
}

double QuantileSketch::value_for(int index) const noexcept {
  // Bucket `index` covers (gamma^(index-1), gamma^index]; the harmonic
  // midpoint 2*gamma^i/(gamma+1) is within alpha of every point in it.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void QuantileSketch::observe(double value) noexcept {
#ifndef HV_OBS_DISABLED
  if (!(value > 0.0)) {  // zero, negative, NaN
    zero_count_.fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t slot =
      static_cast<std::size_t>(index_for(value) - min_index_);
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
#else
  (void)value;
#endif
}

void QuantileSketch::merge(const QuantileSketch& other) noexcept {
#ifndef HV_OBS_DISABLED
  if (other.size_ != size_ || other.min_index_ != min_index_) return;
  for (std::size_t i = 0; i < size_; ++i) {
    const std::uint64_t n =
        other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  zero_count_.fetch_add(other.zero_count_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
#else
  (void)other;
#endif
}

double QuantileSketch::quantile(double q) const noexcept {
#ifndef HV_OBS_DISABLED
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 0-based rank of the sample whose value we estimate.
  const auto rank = static_cast<std::uint64_t>(
      std::llround(q * static_cast<double>(total - 1)));
  std::uint64_t cumulative = zero_count_.load(std::memory_order_relaxed);
  if (cumulative > rank) return 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative > rank) {
      return value_for(min_index_ + static_cast<int>(i));
    }
  }
  // Count raced ahead of the bucket write; the top of the grid is the
  // closest answer available.
  return value_for(max_index_);
#else
  (void)q;
  return 0.0;
#endif
}

void QuantileSketch::reset() noexcept {
#ifndef HV_OBS_DISABLED
  for (std::size_t i = 0; i < size_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
#endif
  zero_count_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

}  // namespace hv::obs
