// hv::obs — mergeable log-bucketed quantile sketch (DDSketch-style).
//
// Fixed-bucket histograms answer "how many under 5ms" well but pin
// percentile accuracy to the bucket ladder: a p999 landing inside the
// 2.5ms..5ms bucket can be off by 2x.  The sketch buckets values on a
// geometric grid instead — bucket i covers (gamma^(i-1), gamma^i] with
// gamma = (1+a)/(1-a) — which bounds the RELATIVE error of every
// quantile estimate by the configured accuracy `a` (default 1%),
// uniformly across the whole tracked range (1e-9 .. 1e9, i.e. ns to
// ~30 years when observing seconds).
//
// Two sketches with the same accuracy merge by bucket-count addition,
// so per-worker sketches can fold into a run-level one without loss.
// Mutation is relaxed atomics (same contract as Counter/Histogram);
// under HV_OBS_DISABLED observe/merge compile to no-ops and the bucket
// array is never allocated.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace hv::obs {

class QuantileSketch {
 public:
  /// `relative_accuracy` a in (0, 1): every quantile estimate q^ for a
  /// true sample value q satisfies |q^ - q| <= a * q.
  explicit QuantileSketch(double relative_accuracy = 0.01);

  QuantileSketch(const QuantileSketch&) = delete;
  QuantileSketch& operator=(const QuantileSketch&) = delete;

  /// Records one value.  Non-positive (and NaN) values land in a
  /// dedicated zero bucket and are reported as 0.0 by `quantile`.
  void observe(double value) noexcept;

  /// Folds `other` into this sketch (same relative accuracy required;
  /// mismatched grids are ignored rather than corrupting the buckets).
  void merge(const QuantileSketch& other) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Quantile estimate for q in [0,1]; 0 when empty.  The estimate is
  /// within `relative_accuracy` of the sample at rank round(q*(n-1)).
  double quantile(double q) const noexcept;

  double relative_accuracy() const noexcept { return alpha_; }
  /// Buckets in the geometric grid (exposed for the accuracy tests).
  std::size_t grid_size() const noexcept { return size_; }

  void reset() noexcept;

 private:
  int index_for(double value) const noexcept;
  double value_for(int index) const noexcept;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  int min_index_;
  int max_index_;
  std::size_t size_;
#ifndef HV_OBS_DISABLED
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
#endif
  std::atomic<std::uint64_t> zero_count_{0};
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace hv::obs
