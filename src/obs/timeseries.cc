#include "obs/timeseries.h"

#include <cstdio>
#include <fstream>

#include "obs/crash.h"
#include "obs/metrics.h"

namespace hv::obs {

TimeseriesSampler::TimeseriesSampler(Registry& registry)
    : registry_(registry) {}

TimeseriesSampler::~TimeseriesSampler() { stop(); }

bool TimeseriesSampler::start(const TimeseriesOptions& options) {
#ifndef HV_OBS_DISABLED
  if (options.path.empty()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return false;
  {
    // Truncate up front so a re-run over the same workdir starts a
    // fresh series, and fail early on an unwritable path.
    std::ofstream file(options.path, std::ios::binary | std::ios::trunc);
    if (!file) return false;
  }
  options_ = options;
  if (options_.period_s <= 0.0) options_.period_s = 0.5;
  previous_.clear();
  start_time_ = std::chrono::steady_clock::now();
  last_time_ = start_time_;
  // Seed the crash handler's metrics snapshot immediately: a crash
  // before the first periodic tick should embed the (near-zero) start
  // counters rather than report the snapshot as absent.
  crash::refresh_metrics(registry_);
  running_ = true;
  thread_ = std::thread([this] { loop(); });
  return true;
#else
  (void)options;
  return false;
#endif
}

void TimeseriesSampler::stop() {
#ifndef HV_OBS_DISABLED
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final sample so the series covers the whole run.
  std::lock_guard<std::mutex> lock(mutex_);
  sample_locked();
#endif
}

bool TimeseriesSampler::running() const noexcept {
  return running_;
}

void TimeseriesSampler::sample_now() {
#ifndef HV_OBS_DISABLED
  std::lock_guard<std::mutex> lock(mutex_);
  sample_locked();
#endif
}

void TimeseriesSampler::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_) {
    wake_.wait_for(lock, std::chrono::duration<double>(options_.period_s),
                   [this] { return !running_; });
    if (!running_) break;
    sample_locked();
  }
}

void TimeseriesSampler::sample_locked() {
#ifndef HV_OBS_DISABLED
  if (options_.path.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  const double t_s =
      std::chrono::duration<double>(now - start_time_).count();
  const double dt_s =
      std::chrono::duration<double>(now - last_time_).count();
  last_time_ = now;

  // Each tick also re-renders the crash handler's pre-formatted metrics
  // snapshot, so a report written from signal context embeds counters no
  // staler than one sampling period.
  crash::refresh_metrics(registry_);

  // Per-family sums across label sets: sparklines want family rates.
  std::map<std::string, std::uint64_t> current;
  registry_.visit_counters(
      [&](const std::string& name, const std::vector<std::string>&,
          std::uint64_t value) { current[name] += value; });

  std::ofstream file(options_.path,
                     std::ios::binary | std::ios::app);
  if (!file) return;
  char head[96];
  std::snprintf(head, sizeof(head),
                "{\"t_s\": %.3f, \"dt_s\": %.3f, \"counters\": {", t_s,
                dt_s);
  file << head;
  bool first = true;
  for (const auto& [name, value] : current) {
    const auto it = previous_.find(name);
    const std::uint64_t before = it == previous_.end() ? 0 : it->second;
    if (value == before) continue;  // zero delta: omit
    file << (first ? "" : ", ") << "\"" << name
         << "\": " << (value - before);
    first = false;
  }
  file << "}}\n";
  previous_ = std::move(current);

  // Keep the crash handler's metrics snapshot near-live for free.
  crash::refresh_metrics(registry_);
#endif
}

}  // namespace hv::obs
