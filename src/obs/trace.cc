#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace hv::obs {
namespace {

#ifndef HV_OBS_DISABLED
std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Per-thread stack of open span names; parent/depth come from here, so
/// nesting needs no cross-thread coordination.
std::vector<std::string>& span_stack() {
  thread_local std::vector<std::string> stack;
  return stack;
}
#endif

std::string escape_json(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::since_epoch_us(
    std::chrono::steady_clock::time_point when) const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(when - epoch_)
          .count());
}

void Tracer::record(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<SpanEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<SpanEvent> snapshot = events();
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanEvent& event : snapshot) {
    out << (first ? "" : ",") << "\n  {\"name\": \""
        << escape_json(event.name) << "\", \"cat\": \""
        << escape_json(event.category) << "\", \"ph\": \"X\", \"ts\": "
        << event.start_us << ", \"dur\": " << event.duration_us
        << ", \"pid\": 1, \"tid\": " << event.thread_id << ", \"args\": {";
    out << "\"parent\": \"" << escape_json(event.parent) << "\", \"depth\": \""
        << event.depth << "\"";
    for (const auto& [key, value] : event.args) {
      out << ", \"" << escape_json(key) << "\": \"" << escape_json(value)
          << "\"";
    }
    out << "}}";
    first = false;
  }
  out << (first ? "]" : "\n]") << "}\n";
}

std::string Tracer::chrome_trace_text() const {
  std::ostringstream out;
  write_chrome_trace(out);
  return out.str();
}

#ifndef HV_OBS_DISABLED

Span::Span(Tracer& tracer, std::string name, std::string category)
    : tracer_(&tracer), start_(std::chrono::steady_clock::now()) {
  event_.name = std::move(name);
  event_.category = std::move(category);
  std::vector<std::string>& stack = span_stack();
  if (!stack.empty()) event_.parent = stack.back();
  event_.depth = static_cast<std::uint32_t>(stack.size());
  event_.thread_id = this_thread_id();
  stack.push_back(event_.name);
}

Span::~Span() {
  const auto end = std::chrono::steady_clock::now();
  span_stack().pop_back();
  event_.start_us = tracer_->since_epoch_us(start_);
  event_.duration_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count());
  tracer_->record(std::move(event_));
}

void Span::arg(std::string key, std::string value) {
  event_.args.emplace_back(std::move(key), std::move(value));
}

#else  // HV_OBS_DISABLED

Span::Span(Tracer&, std::string, std::string) {}
Span::~Span() = default;
void Span::arg(std::string, std::string) {}

#endif

Tracer& default_tracer() {
  static Tracer* const tracer = new Tracer();  // never destroyed
  return *tracer;
}

}  // namespace hv::obs
