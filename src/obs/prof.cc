#include "obs/prof.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/fdr.h"
#include "obs/metrics.h"

#if defined(__linux__) && !defined(HV_OBS_DISABLED)
#define HV_PROF_HAVE_THREAD_TIMERS 1
#include <csignal>
#include <ctime>
#include <sys/syscall.h>
#include <sys/types.h>
#include <unistd.h>
#else
#define HV_PROF_HAVE_THREAD_TIMERS 0
#endif

namespace hv::obs::prof {

#ifndef HV_OBS_DISABLED

namespace {

// --- scope registry ---------------------------------------------------------

/// Names live in a deque (stable storage) so the id->name mapping never
/// relocates; the signal handler never touches this — it only ever sees
/// interned ids.
struct ScopeTable {
  std::mutex mutex;
  std::deque<std::string> names;
  std::unordered_map<std::string_view, ScopeId> ids;

  /// Signal-safe mirror for the crash writer (obs/crash.cc): fixed-size
  /// truncating copies, published by a release store on `raw_count` and
  /// immutable afterwards.  scope_name_raw reads these without a lock.
  static constexpr std::size_t kRawNameCap = 48;
  char raw[kMaxScopes][kRawNameCap] = {{0}};
  std::atomic<std::uint32_t> raw_count{0};

  ScopeTable() {
    names.emplace_back("(unattributed)");
    ids.emplace(names.back(), kNoScope);
    publish_raw(kNoScope, names.back());
  }

  void publish_raw(ScopeId id, std::string_view name) {
    const std::size_t n = name.size() < kRawNameCap - 1
                              ? name.size()
                              : kRawNameCap - 1;
    std::memcpy(raw[id], name.data(), n);
    raw[id][n] = '\0';
    raw_count.store(static_cast<std::uint32_t>(id) + 1,
                    std::memory_order_release);
  }
};

ScopeTable& scope_table() {
  static ScopeTable table;
  return table;
}

/// Resolves a sample path to "a;b;c" under one table lock.
std::string join_path(const std::vector<ScopeId>& path) {
  ScopeTable& table = scope_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out.push_back(';');
    if (path[i] < table.names.size()) {
      out.append(table.names[path[i]]);
    } else {
      out.append("(unknown)");
    }
  }
  return out;
}

// --- per-thread state -------------------------------------------------------

/// One ring slot: a copied scope path.  Atomics because the polling
/// sampler writes from another thread; the values are only ever read
/// after an acquire on the ring write index.
struct Slot {
  std::atomic<std::uint8_t> depth{0};
  std::atomic<ScopeId> frames[kSlotFrames];
};

struct ThreadState {
  std::string name;
  detail::ScopeStack* stack = nullptr;  ///< nulled at detach
  std::atomic<bool> alive{true};
  Counter* samples_metric = nullptr;

  /// Sample ring, allocated lazily at the first profiling session so
  /// unprofiled runs pay nothing; `ring_ready` gates every producer.
  std::unique_ptr<Slot[]> slots;
  std::atomic<bool> ring_ready{false};
  std::atomic<std::uint64_t> write{0};
  std::atomic<std::uint64_t> read{0};
  std::atomic<std::uint64_t> drops{0};
  std::uint64_t drops_drained = 0;  ///< collector-only cursor

  /// Byte attribution (charge_bytes), indexed by scope id.
  std::unique_ptr<std::atomic<std::uint64_t>[]> bytes;

#if HV_PROF_HAVE_THREAD_TIMERS
  pid_t tid = 0;
  timer_t timer{};
  bool timer_armed = false;
#endif
};

thread_local ThreadState* tls_thread = nullptr;

/// The sampling primitive, shared by the SIGPROF handler (same thread)
/// and the polling sampler (cross-thread).  Signal-safe by
/// construction: relaxed atomic reads of the scope stack, atomic writes
/// into a pre-allocated slot, drop-on-full — no allocation, no lock, no
/// errno, never blocks.
void record_sample(ThreadState& t, const detail::ScopeStack& s) noexcept {
  if (!t.ring_ready.load(std::memory_order_acquire)) return;
  const std::uint64_t w = t.write.load(std::memory_order_relaxed);
  if (w - t.read.load(std::memory_order_acquire) >= kRingCapacity) {
    t.drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = t.slots[w % kRingCapacity];
  std::uint32_t depth = s.depth.load(std::memory_order_relaxed);
  if (depth > kMaxDepth) depth = kMaxDepth;
  std::uint8_t n = 0;
  for (std::uint32_t i = 0; i < depth; ++i) {
    slot.frames[n++].store(s.frames[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  }
  const ScopeId leaf = s.leaf.load(std::memory_order_relaxed);
  if (leaf != kNoScope) {
    slot.frames[n++].store(leaf, std::memory_order_relaxed);
  }
  slot.depth.store(n, std::memory_order_relaxed);
  t.write.store(w + 1, std::memory_order_release);
}

/// Decodes one drained slot into `path` (never empty).
void decode_slot(const Slot& slot, std::vector<ScopeId>* path) {
  path->clear();
  const std::uint8_t n = slot.depth.load(std::memory_order_relaxed);
  for (std::uint8_t i = 0; i < n && i < kSlotFrames; ++i) {
    path->push_back(slot.frames[i].load(std::memory_order_relaxed));
  }
  if (path->empty()) path->push_back(kNoScope);
}

#if HV_PROF_HAVE_THREAD_TIMERS

#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

extern "C" void hv_prof_sigprof_handler(int, siginfo_t*, void*) {
  ThreadState* t = tls_thread;
  if (t != nullptr) record_sample(*t, detail::tls_stack);
}

void install_sigprof_handler() {
  static const bool installed = [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = hv_prof_sigprof_handler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    return ::sigaction(SIGPROF, &action, nullptr) == 0;
  }();
  (void)installed;
}

bool arm_timer(ThreadState& t, int hz) {
  if (t.timer_armed) return true;
  struct sigevent event;
  std::memset(&event, 0, sizeof(event));
  event.sigev_notify = SIGEV_THREAD_ID;
  event.sigev_signo = SIGPROF;
  event.sigev_notify_thread_id = t.tid;
  // The *target* thread's CPU clock: an IO-blocked thread accrues no
  // samples, so profiles answer "where did the cycles go", not "where
  // did we wait".  CLOCK_THREAD_CPUTIME_ID would name the clock of
  // whichever thread calls timer_create — wrong when start() arms
  // threads registered before the session — so the clockid is derived
  // from the tid (the kernel's CPUCLOCK_SCHED per-thread encoding, the
  // same id pthread_getcpuclockid returns).
  const clockid_t thread_clock = static_cast<clockid_t>(
      ((~static_cast<clockid_t>(t.tid)) << 3) | 6);
  if (::timer_create(thread_clock, &event, &t.timer) != 0) {
    return false;
  }
  const long period_ns = 1000000000L / hz;
  struct itimerspec spec;
  std::memset(&spec, 0, sizeof(spec));
  spec.it_interval.tv_sec = period_ns / 1000000000L;
  spec.it_interval.tv_nsec = period_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (::timer_settime(t.timer, 0, &spec, nullptr) != 0) {
    ::timer_delete(t.timer);
    return false;
  }
  t.timer_armed = true;
  return true;
}

void disarm_timer(ThreadState& t) {
  if (t.timer_armed) {
    ::timer_delete(t.timer);
    t.timer_armed = false;
  }
}

#else  // !HV_PROF_HAVE_THREAD_TIMERS

bool arm_timer(ThreadState&, int) { return false; }
void disarm_timer(ThreadState&) {}

#endif

}  // namespace

// --- free functions ---------------------------------------------------------

ScopeId intern_scope(std::string_view name) {
  if (name.empty()) return kNoScope;
  ScopeTable& table = scope_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  const auto it = table.ids.find(name);
  if (it != table.ids.end()) return it->second;
  if (table.names.size() >= kMaxScopes) return kNoScope;
  table.names.emplace_back(name);
  const ScopeId id = static_cast<ScopeId>(table.names.size() - 1);
  table.ids.emplace(table.names.back(), id);
  table.publish_raw(id, table.names.back());
  return id;
}

const char* scope_name_raw(ScopeId id) noexcept {
  ScopeTable& table = scope_table();
  if (id >= table.raw_count.load(std::memory_order_acquire)) return "";
  return table.raw[id];
}

std::string scope_name(ScopeId id) {
  ScopeTable& table = scope_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  if (id >= table.names.size()) return std::string();
  return table.names[id];
}

void charge_bytes(std::size_t bytes) noexcept {
  ThreadState* t = tls_thread;
  if (t == nullptr || bytes == 0) return;
  const detail::ScopeStack& s = detail::tls_stack;
  ScopeId id = s.leaf.load(std::memory_order_relaxed);
  if (id == kNoScope) {
    const std::uint32_t depth = s.depth.load(std::memory_order_relaxed);
    if (depth > 0 && depth <= kMaxDepth) {
      id = s.frames[depth - 1].load(std::memory_order_relaxed);
    }
  }
  t->bytes[id < kMaxScopes ? id : kNoScope].fetch_add(
      bytes, std::memory_order_relaxed);
}

std::uint64_t thread_cursor() noexcept {
  const ThreadState* t = tls_thread;
  return t != nullptr ? t->write.load(std::memory_order_relaxed) : 0;
}

std::string hottest_path_since(std::uint64_t cursor) {
  ThreadState* t = tls_thread;
  if (t == nullptr || !t->ring_ready.load(std::memory_order_acquire)) {
    return std::string();
  }
  const std::uint64_t w = t->write.load(std::memory_order_relaxed);
  std::uint64_t begin = cursor;
  // Slots older than a full ring revolution have been overwritten; the
  // collector may also have consumed part of the window already — the
  // slot contents survive a drain, so only the wrap bound matters.
  if (w > kRingCapacity && begin < w - kRingCapacity) {
    begin = w - kRingCapacity;
  }
  if (begin >= w) return std::string();
  std::map<std::vector<ScopeId>, std::uint64_t> tally;
  std::vector<ScopeId> path;
  for (std::uint64_t i = begin; i != w; ++i) {
    decode_slot(t->slots[i % kRingCapacity], &path);
    ++tally[path];
  }
  const std::vector<ScopeId>* best = nullptr;
  std::uint64_t best_count = 0;
  for (const auto& [p, count] : tally) {
    if (count > best_count) {
      best = &p;
      best_count = count;
    }
  }
  return best != nullptr ? join_path(*best) : std::string();
}

// --- Profiler ---------------------------------------------------------------

struct Profiler::Impl {
  /// Registry + lifecycle lock (attach/detach, start/stop, draining).
  mutable std::mutex mutex;
  std::vector<std::unique_ptr<ThreadState>> threads;
  bool running = false;
  bool ever_started = false;
  bool polling = false;
  int hz = 0;
  double drain_period_s = 0.25;
  std::condition_variable wake;
  std::thread collector;

  /// Aggregate lock (merged path counts); always inner to `mutex`.
  std::mutex agg_mutex;
  std::map<std::vector<ScopeId>, std::uint64_t> counts;
  std::atomic<std::uint64_t> samples_total{0};
  std::atomic<std::uint64_t> drops_total{0};

  CounterFamily* samples_family = nullptr;
  Counter* drops_metric = nullptr;

  Impl() {
    samples_family = &default_registry().counter_family(
        "hv_obs_prof_samples_total",
        "Profiler samples drained, per registered thread", {"thread"});
    drops_metric = &default_registry().counter(
        "hv_obs_prof_drops_total",
        "Profiler samples dropped on ring-buffer overrun");
  }

  void ensure_ring(ThreadState& t) {  // caller holds mutex
    if (t.ring_ready.load(std::memory_order_relaxed)) return;
    t.slots.reset(new Slot[kRingCapacity]);
    t.ring_ready.store(true, std::memory_order_release);
  }

  void drain_thread(ThreadState& t) {  // caller holds mutex
    if (t.ring_ready.load(std::memory_order_acquire)) {
      const std::uint64_t r = t.read.load(std::memory_order_relaxed);
      const std::uint64_t w = t.write.load(std::memory_order_acquire);
      if (w != r) {
        std::lock_guard<std::mutex> agg(agg_mutex);
        std::vector<ScopeId> path;
        for (std::uint64_t i = r; i != w; ++i) {
          decode_slot(t.slots[i % kRingCapacity], &path);
          ++counts[path];
        }
        t.read.store(w, std::memory_order_release);
        samples_total.fetch_add(w - r, std::memory_order_relaxed);
        if (t.samples_metric != nullptr) t.samples_metric->inc(w - r);
      }
    }
    const std::uint64_t drops = t.drops.load(std::memory_order_relaxed);
    if (drops > t.drops_drained) {
      const std::uint64_t delta = drops - t.drops_drained;
      t.drops_drained = drops;
      drops_total.fetch_add(delta, std::memory_order_relaxed);
      if (drops_metric != nullptr) drops_metric->inc(delta);
    }
  }

  void drain_all() {  // caller holds mutex
    for (auto& t : threads) drain_thread(*t);
  }

  /// Collector: drains rings every drain_period_s; in polling mode it is
  /// also the sampler, ticking every thread's scope stack at `hz`.
  void collector_loop() {
    using clock = std::chrono::steady_clock;
    std::unique_lock<std::mutex> lock(mutex);
    const auto drain_period = std::chrono::duration_cast<clock::duration>(
        std::chrono::duration<double>(drain_period_s));
    const auto tick = std::chrono::duration_cast<clock::duration>(
        std::chrono::duration<double>(polling ? 1.0 / hz : drain_period_s));
    auto next_drain = clock::now() + drain_period;
    while (running) {
      wake.wait_for(lock, tick);
      if (!running) break;
      if (polling) {
        for (auto& t : threads) {
          if (t->alive.load(std::memory_order_relaxed) &&
              t->stack != nullptr) {
            record_sample(*t, *t->stack);
          }
        }
      }
      if (!polling || clock::now() >= next_drain) {
        drain_all();
        next_drain = clock::now() + drain_period;
      }
    }
  }
};

Profiler::Profiler() : impl_(std::make_unique<Impl>()) {}

Profiler::~Profiler() { stop(); }

bool Profiler::start(const ProfileOptions& options) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->running) return false;
  impl_->hz = std::clamp(options.hz, 1, 10000);
  impl_->drain_period_s = std::clamp(options.drain_period_s, 0.01, 3600.0);
  impl_->polling = options.force_polling || !HV_PROF_HAVE_THREAD_TIMERS;
  impl_->ever_started = true;
  impl_->running = true;
#if HV_PROF_HAVE_THREAD_TIMERS
  if (!impl_->polling) install_sigprof_handler();
#endif
  bool arm_failed = false;
  for (auto& t : impl_->threads) {
    if (!t->alive.load(std::memory_order_relaxed)) continue;
    impl_->ensure_ring(*t);
    if (!impl_->polling && !arm_timer(*t, impl_->hz)) arm_failed = true;
  }
  if (arm_failed) {
    // Per-thread CPU timers unavailable after all: fall back to the
    // portable sampler so the session still produces data.
    for (auto& t : impl_->threads) disarm_timer(*t);
    impl_->polling = true;
  }
  impl_->collector = std::thread([this] { impl_->collector_loop(); });
  return true;
}

void Profiler::stop() {
  std::thread collector;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (!impl_->running) return;
    impl_->running = false;
    impl_->wake.notify_all();
    collector = std::move(impl_->collector);
  }
  if (collector.joinable()) collector.join();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& t : impl_->threads) disarm_timer(*t);
  impl_->drain_all();
}

bool Profiler::running() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->running;
}

int Profiler::hz() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->hz;
}

std::uint64_t Profiler::sample_count() const noexcept {
  return impl_->samples_total.load(std::memory_order_relaxed);
}

std::uint64_t Profiler::drop_count() const noexcept {
  return impl_->drops_total.load(std::memory_order_relaxed);
}

void* Profiler::attach_current_thread(std::string name) {
  if (tls_thread != nullptr) return nullptr;  // nested guard: no-op
  auto state = std::make_unique<ThreadState>();
  state->name = std::move(name);
  state->stack = &detail::tls_stack;
  state->bytes.reset(new std::atomic<std::uint64_t>[kMaxScopes]());
#if HV_PROF_HAVE_THREAD_TIMERS
  state->tid = static_cast<pid_t>(::syscall(SYS_gettid));
#endif
  ThreadState* raw = state.get();
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    raw->samples_metric = &impl_->samples_family->with({raw->name});
    impl_->threads.push_back(std::move(state));
    if (impl_->running) {
      impl_->ensure_ring(*raw);
      if (!impl_->polling) arm_timer(*raw, impl_->hz);
    }
  }
  tls_thread = raw;
  return raw;
}

void Profiler::detach_current_thread(void* state) {
  if (state == nullptr) return;
  ThreadState* t = static_cast<ThreadState*>(state);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  disarm_timer(*t);
  tls_thread = nullptr;
  t->alive.store(false, std::memory_order_relaxed);
  // The polling sampler must never touch a detached thread's TLS (it may
  // be destroyed once the thread exits); the ring itself outlives the
  // thread so queued samples still drain.
  t->stack = nullptr;
  impl_->drain_thread(*t);
}

ProfileSnapshot Profiler::snapshot() {
  ProfileSnapshot snap;
  std::map<std::vector<ScopeId>, std::uint64_t> counts_copy;
  std::vector<std::uint64_t> bytes_by_id(kMaxScopes, 0);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->drain_all();
    snap.enabled = impl_->ever_started;
    snap.hz = impl_->hz;
    for (const auto& t : impl_->threads) {
      if (t->bytes == nullptr) continue;
      for (std::size_t i = 0; i < kMaxScopes; ++i) {
        bytes_by_id[i] += t->bytes[i].load(std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> agg(impl_->agg_mutex);
    counts_copy = impl_->counts;
  }
  snap.samples = sample_count();
  snap.drops = drop_count();

  // Fold exact-path counts into a tree: `self` is the count of samples
  // whose deepest frame is this node, `total` sums the subtree.
  struct Node {
    std::uint64_t self = 0;
    std::uint64_t total = 0;
  };
  std::map<std::vector<ScopeId>, Node> nodes;
  for (const auto& [path, count] : counts_copy) {
    nodes[path].self += count;
    std::vector<ScopeId> prefix;
    prefix.reserve(path.size());
    for (const ScopeId id : path) {
      prefix.push_back(id);
      nodes[prefix].total += count;
    }
  }
  snap.entries.reserve(nodes.size());
  for (const auto& [path, node] : nodes) {
    snap.entries.push_back(ProfileEntry{join_path(path), node.self,
                                        node.total});
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.path < b.path;
            });

  for (std::size_t id = 0; id < kMaxScopes; ++id) {
    if (bytes_by_id[id] == 0) continue;
    snap.bytes.push_back(
        ByteEntry{scope_name(static_cast<ScopeId>(id)), bytes_by_id[id]});
  }
  std::sort(snap.bytes.begin(), snap.bytes.end(),
            [](const ByteEntry& a, const ByteEntry& b) {
              return a.scope < b.scope;
            });
  return snap;
}

void Profiler::write_folded(std::ostream& out) {
  const ProfileSnapshot snap = snapshot();
  for (const ProfileEntry& entry : snap.entries) {
    if (entry.self == 0) continue;
    out << entry.path << ' ' << entry.self << '\n';
  }
}

void Profiler::write_profile_json(std::ostream& out) {
  const ProfileSnapshot snap = snapshot();
  out << "{\"enabled\": " << (snap.enabled ? "true" : "false")
      << ", \"hz\": " << snap.hz << ", \"samples\": " << snap.samples
      << ", \"drops\": " << snap.drops << ", \"scopes\": [";
  // Top scopes by self share; re-sorted by path so output is
  // deterministic for a given sample set.
  std::vector<const ProfileEntry*> top;
  top.reserve(snap.entries.size());
  for (const ProfileEntry& entry : snap.entries) top.push_back(&entry);
  std::stable_sort(top.begin(), top.end(),
                   [](const ProfileEntry* a, const ProfileEntry* b) {
                     return a->self > b->self;
                   });
  constexpr std::size_t kTopScopes = 40;
  if (top.size() > kTopScopes) top.resize(kTopScopes);
  std::sort(top.begin(), top.end(),
            [](const ProfileEntry* a, const ProfileEntry* b) {
              return a->path < b->path;
            });
  const double denom =
      snap.samples > 0 ? static_cast<double>(snap.samples) : 1.0;
  bool first = true;
  for (const ProfileEntry* entry : top) {
    if (!first) out << ", ";
    first = false;
    char share[32];
    std::snprintf(share, sizeof(share), "%.3f",
                  100.0 * static_cast<double>(entry->self) / denom);
    out << "{\"path\": \"" << entry->path << "\", \"self\": " << entry->self
        << ", \"total\": " << entry->total << ", \"self_share\": " << share
        << "}";
  }
  out << "], \"bytes_by_scope\": [";
  first = true;
  for (const ByteEntry& entry : snap.bytes) {
    if (!first) out << ", ";
    first = false;
    out << "{\"scope\": \"" << entry.scope
        << "\", \"bytes\": " << entry.bytes << "}";
  }
  out << "]}";
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->running) return;
  {
    std::lock_guard<std::mutex> agg(impl_->agg_mutex);
    impl_->counts.clear();
  }
  impl_->samples_total.store(0, std::memory_order_relaxed);
  impl_->drops_total.store(0, std::memory_order_relaxed);
  impl_->ever_started = false;
  impl_->hz = 0;
  auto& threads = impl_->threads;
  threads.erase(std::remove_if(threads.begin(), threads.end(),
                               [](const std::unique_ptr<ThreadState>& t) {
                                 return !t->alive.load(
                                     std::memory_order_relaxed);
                               }),
                threads.end());
  for (auto& t : threads) {
    t->write.store(0, std::memory_order_relaxed);
    t->read.store(0, std::memory_order_relaxed);
    t->drops.store(0, std::memory_order_relaxed);
    t->drops_drained = 0;
    if (t->bytes != nullptr) {
      for (std::size_t i = 0; i < kMaxScopes; ++i) {
        t->bytes[i].store(0, std::memory_order_relaxed);
      }
    }
  }
}

void Profiler::record_synthetic_sample(const std::vector<std::string>& path,
                                       std::uint64_t weight) {
  std::vector<ScopeId> ids;
  ids.reserve(path.size());
  for (const std::string& name : path) ids.push_back(intern_scope(name));
  if (ids.empty()) ids.push_back(kNoScope);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->ever_started = true;
  {
    std::lock_guard<std::mutex> agg(impl_->agg_mutex);
    impl_->counts[ids] += weight;
  }
  impl_->samples_total.fetch_add(weight, std::memory_order_relaxed);
}

bool Profiler::sample_current_thread_for_test() {
  ThreadState* t = tls_thread;
  if (t == nullptr || !t->ring_ready.load(std::memory_order_acquire)) {
    return false;
  }
  record_sample(*t, detail::tls_stack);
  return true;
}

// --- ThreadGuard ------------------------------------------------------------

ThreadGuard::ThreadGuard(std::string name) {
  // Name the thread in the flight recorder too, so crash reports show
  // "w3" instead of a synthetic table index.
  fdr::set_thread_name(name);
  state_ = profiler().attach_current_thread(std::move(name));
}

ThreadGuard::~ThreadGuard() { profiler().detach_current_thread(state_); }

#else  // HV_OBS_DISABLED -----------------------------------------------------

ScopeId intern_scope(std::string_view) { return kNoScope; }
std::string scope_name(ScopeId id) {
  return id == kNoScope ? std::string("(unattributed)") : std::string();
}
const char* scope_name_raw(ScopeId) noexcept { return ""; }
void charge_bytes(std::size_t) noexcept {}
std::uint64_t thread_cursor() noexcept { return 0; }
std::string hottest_path_since(std::uint64_t) { return std::string(); }

struct Profiler::Impl {};
Profiler::Profiler() = default;
Profiler::~Profiler() = default;
bool Profiler::start(const ProfileOptions&) { return false; }
void Profiler::stop() {}
bool Profiler::running() const noexcept { return false; }
int Profiler::hz() const noexcept { return 0; }
std::uint64_t Profiler::sample_count() const noexcept { return 0; }
std::uint64_t Profiler::drop_count() const noexcept { return 0; }
ProfileSnapshot Profiler::snapshot() { return ProfileSnapshot{}; }
void Profiler::write_folded(std::ostream&) {}
void Profiler::write_profile_json(std::ostream& out) {
  out << "{\"enabled\": false}";
}
void Profiler::reset() {}
void Profiler::record_synthetic_sample(const std::vector<std::string>&,
                                       std::uint64_t) {}
bool Profiler::sample_current_thread_for_test() { return false; }
void* Profiler::attach_current_thread(std::string) { return nullptr; }
void Profiler::detach_current_thread(void*) {}

ThreadGuard::ThreadGuard(std::string) {}
ThreadGuard::~ThreadGuard() = default;

#endif  // HV_OBS_DISABLED

Profiler& profiler() {
  static Profiler instance;
  return instance;
}

}  // namespace hv::obs::prof
