// hv::obs — umbrella header for the observability layer.
//
//   metrics.h     Registry / Counter / Gauge / Histogram / ScopedTimer
//   sketch.h      QuantileSketch (log-bucketed, mergeable percentiles)
//   health.h      RunHealth (heartbeats/watchdog, slow pages, run report)
//   prof.h        sampling profiler (scope attribution, flamegraph export)
//   fdr.h         flight recorder (per-thread event rings, breadcrumbs)
//   crash.h       fatal-signal crash_report.json writer
//   timeseries.h  periodic counter-delta sampler (timeseries.jsonl)
//   json.h        minimal JSON reader for our own artifacts
//   trace.h       Tracer / Span (Chrome trace_event export)
//   log.h         Log (levels, key=value fields, ring-buffer sink)
//
// Each piece has a process-wide default instance (`default_registry()`,
// `default_tracer()`, `default_log()`) that all built-in instrumentation
// uses; tests construct local instances for isolated assertions.
// Compile with -DHV_OBS_DISABLED (CMake: -DHV_OBS_DISABLED=ON) to turn
// the whole layer into no-ops.
#pragma once

#include "obs/crash.h"
#include "obs/fdr.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/sketch.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
