#include "obs/crash.h"

#include <atomic>
#include <cstring>
#include <exception>
#include <mutex>
#include <string>

#include "obs/fdr.h"
#include "obs/metrics.h"
#include "obs/prof.h"

#if !defined(_WIN32)
#define HV_CRASH_HAVE_SIGNALS 1
#include <csignal>
#include <ctime>
#include <fcntl.h>
#include <unistd.h>
#else
#define HV_CRASH_HAVE_SIGNALS 0
#endif

namespace hv::obs::crash {

#if !defined(HV_OBS_DISABLED) && HV_CRASH_HAVE_SIGNALS

namespace {

// --- static state (everything the handler touches lives here) ---------------

constexpr std::size_t kArenaCap = 1 << 20;
constexpr std::size_t kMetricsCap = 256 * 1024;
constexpr std::size_t kPathCap = 4096;
constexpr std::size_t kAltStackCap = 64 * 1024;
constexpr int kSignals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL};
constexpr std::size_t kSignalCount = sizeof(kSignals) / sizeof(kSignals[0]);

/// Report-file claim: 0 = none, 1 = a writer is formatting, 2 = a
/// soft (hard-stall) report is on disk, 3 = a fatal report is on disk.
/// Fatal writers may reclaim state 2 — the crash after a stall is the
/// better evidence; nothing ever overwrites state 3.
std::atomic<int> g_state{0};
std::atomic<bool> g_installed{false};
int g_fd = -1;
char g_path[kPathCap] = {0};
char g_arena[kArenaCap];
char g_altstack[kAltStackCap];
char g_build_version[64] = {0};
char g_build_backend[64] = {0};
struct sigaction g_saved[kSignalCount];
std::terminate_handler g_saved_terminate = nullptr;

/// Double-buffered pre-rendered metrics JSON.  Each side carries a
/// seqlock version (odd while being rewritten) so the handler can tell
/// a stable snapshot from one the sampler is re-rendering under it.
struct MetricsBuffers {
  char buf[2][kMetricsCap];
  std::size_t len[2] = {0, 0};
  std::atomic<std::uint32_t> ver[2] = {{0}, {0}};
  std::atomic<int> published{-1};
  std::mutex refresh_mutex;  // normal-context writers only
};
MetricsBuffers g_metrics;

std::uint64_t monotonic_ns() noexcept {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

const char* signal_name(int signo) noexcept {
  switch (signo) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    default: return "";
  }
}

// --- async-signal-safe JSON formatting --------------------------------------

struct Writer {
  char* p;
  char* end;
  bool overflow = false;

  void byte(char c) noexcept {
    if (p < end) {
      *p++ = c;
    } else {
      overflow = true;
    }
  }
  void raw(const char* s) noexcept {
    while (*s != '\0') byte(*s++);
  }
  void raw_n(const char* s, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) byte(s[i]);
  }
  void u64(std::uint64_t v) noexcept {
    char tmp[20];
    std::size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) byte(tmp[--n]);
  }
  /// `"..."` with JSON escaping (the only strings that reach here are
  /// scope names, thread names and domains).
  void quoted(const char* s) noexcept {
    byte('"');
    for (; *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      if (c == '"' || c == '\\') {
        byte('\\');
        byte(static_cast<char>(c));
      } else if (c < 0x20) {
        byte('\\');
        byte('u');
        byte('0');
        byte('0');
        const char* hex = "0123456789abcdef";
        byte(hex[c >> 4]);
        byte(hex[c & 0xF]);
      } else {
        byte(static_cast<char>(c));
      }
    }
    byte('"');
  }
};

/// Copies one thread's breadcrumb out from under its seqlock.  Returns
/// false when the breadcrumb was never set; `torn` reports a read that
/// never stabilized.
struct CrumbCopy {
  char domain[fdr::kCrumbDomain];
  char snapshot[fdr::kCrumbSnapshot];
  std::uint32_t year = 0;
  std::uint64_t offset = 0;
  bool active = false;
  bool torn = false;
};

bool copy_crumb(const fdr::detail::ThreadRec& rec, CrumbCopy& out) noexcept {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint32_t before =
        rec.crumb_seq.load(std::memory_order_acquire);
    if (before == 0) return false;
    if ((before & 1u) != 0) continue;
    std::memcpy(out.domain, rec.crumb_domain, sizeof(out.domain));
    std::memcpy(out.snapshot, rec.crumb_snapshot, sizeof(out.snapshot));
    out.year = rec.crumb_year;
    out.offset = rec.crumb_offset;
    out.active = rec.crumb_active.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (rec.crumb_seq.load(std::memory_order_relaxed) == before) {
      out.torn = false;
      return true;
    }
  }
  out.domain[sizeof(out.domain) - 1] = '\0';
  out.snapshot[sizeof(out.snapshot) - 1] = '\0';
  out.torn = true;
  return true;
}

void format_thread(Writer& w, const fdr::detail::ThreadRec& rec) noexcept {
  w.raw("{\"name\": ");
  w.quoted(rec.name);
  const bool alive = rec.alive.load(std::memory_order_acquire);
  w.raw(alive ? ", \"alive\": true" : ", \"alive\": false");
  const std::uint64_t cursor = rec.cursor.load(std::memory_order_acquire);
  const std::uint64_t dropped =
      cursor > fdr::kRingCapacity ? cursor - fdr::kRingCapacity : 0;
  w.raw(", \"events_total\": ");
  w.u64(cursor);
  w.raw(", \"dropped\": ");
  w.u64(dropped);

  // Live HV_PROF_SCOPE stack (root-first, leaf last).
  w.raw(", \"prof_stack\": [");
  if (alive && rec.prof_stack != nullptr) {
    const auto* stack =
        static_cast<const prof::detail::ScopeStack*>(rec.prof_stack);
    std::uint32_t depth = stack->depth.load(std::memory_order_relaxed);
    if (depth > prof::kMaxDepth) depth = prof::kMaxDepth;
    bool first = true;
    for (std::uint32_t d = 0; d < depth; ++d) {
      if (!first) w.raw(", ");
      w.quoted(prof::scope_name_raw(
          stack->frames[d].load(std::memory_order_relaxed)));
      first = false;
    }
    const prof::ScopeId leaf = stack->leaf.load(std::memory_order_relaxed);
    if (leaf != prof::kNoScope) {
      if (!first) w.raw(", ");
      w.quoted(prof::scope_name_raw(leaf));
    }
  }
  w.raw("]");

  // In-flight (or last-completed) capture breadcrumb.
  CrumbCopy crumb;
  if (copy_crumb(rec, crumb)) {
    w.raw(", \"capture\": {\"domain\": ");
    w.quoted(crumb.domain);
    w.raw(", \"snapshot\": ");
    w.quoted(crumb.snapshot);
    w.raw(", \"year\": ");
    w.u64(crumb.year);
    w.raw(", \"warc_offset\": ");
    w.u64(crumb.offset);
    w.raw(crumb.active ? ", \"active\": true" : ", \"active\": false");
    w.raw(crumb.torn ? ", \"torn\": true}" : ", \"torn\": false}");
  } else {
    w.raw(", \"capture\": null");
  }

  // Newest kReportEvents flight-recorder events, oldest first.
  w.raw(", \"events\": [");
  const std::uint64_t first_event =
      cursor > fdr::kReportEvents ? cursor - fdr::kReportEvents : 0;
  bool first = true;
  for (std::uint64_t c = first_event; c < cursor; ++c) {
    const fdr::Event& event = rec.ring[c % fdr::kRingCapacity];
    if (!first) w.raw(", ");
    w.raw("{\"t_ns\": ");
    w.u64(event.t_ns);
    w.raw(", \"kind\": ");
    w.quoted(fdr::kind_name(event.kind));
    w.raw(", \"scope\": ");
    w.quoted(fdr::scope_name(event.scope));
    w.raw(", \"arg\": ");
    w.u64(event.arg);
    w.raw("}");
    first = false;
  }
  w.raw("]}");
}

std::size_t format_report(char* buffer, std::size_t cap, const char* reason,
                          int signo, const char* detail) noexcept {
  Writer w{buffer, buffer + cap};
  w.raw("{\n\"version\": 1,\n\"obs_disabled\": false,\n\"reason\": ");
  w.quoted(reason);
  w.raw(",\n\"signal\": ");
  w.u64(static_cast<std::uint64_t>(signo));
  w.raw(",\n\"signal_name\": ");
  w.quoted(signal_name(signo));
  w.raw(",\n\"detail\": ");
  w.quoted(detail);
  w.raw(",\n\"pid\": ");
  w.u64(static_cast<std::uint64_t>(getpid()));
  w.raw(",\n\"now_ns\": ");
  w.u64(monotonic_ns());
  w.raw(",\n\"build\": {\"version\": ");
  w.quoted(g_build_version);
  w.raw(", \"simd\": ");
  w.quoted(g_build_backend);
  w.raw("},\n\"thread_drops\": ");
  w.u64(fdr::thread_drops());

  w.raw(",\n\"threads\": [");
  const std::size_t n = fdr::detail::thread_count();
  bool first = true;
  for (std::size_t i = 0; i < n; ++i) {
    const fdr::detail::ThreadRec* rec = fdr::detail::thread_at(i);
    if (rec == nullptr) continue;
    if (!first) w.raw(",\n  ");
    else w.raw("\n  ");
    format_thread(w, *rec);
    first = false;
  }
  w.raw(first ? "]" : "\n]");

  // Pre-rendered metrics snapshot (only if its seqlock is stable — an
  // unstable side would splice torn JSON into the report).
  w.raw(",\n\"metrics\": ");
  const int side = g_metrics.published.load(std::memory_order_acquire);
  bool metrics_done = false;
  if (side >= 0) {
    const std::uint32_t ver =
        g_metrics.ver[side].load(std::memory_order_acquire);
    if ((ver & 1u) == 0) {
      const std::size_t len = g_metrics.len[side];
      if (w.p + len <= w.end) {
        w.raw_n(g_metrics.buf[side], len);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (g_metrics.ver[side].load(std::memory_order_relaxed) == ver) {
          metrics_done = true;
        } else {
          w.p -= len;  // sampler re-rendered under us: back out
        }
      }
    }
  }
  if (!metrics_done) w.raw("null");
  w.raw("\n}\n");

  if (w.overflow) {
    // Fall back to a minimal, guaranteed-valid report.
    Writer m{buffer, buffer + cap};
    m.raw("{\"version\": 1, \"obs_disabled\": false, \"reason\": ");
    m.quoted(reason);
    m.raw(", \"signal\": ");
    m.u64(static_cast<std::uint64_t>(signo));
    m.raw(", \"truncated\": true}\n");
    return static_cast<std::size_t>(m.p - buffer);
  }
  return static_cast<std::size_t>(w.p - buffer);
}

void write_report_file(const char* reason, int signo,
                       const char* detail) noexcept {
  const std::size_t len =
      format_report(g_arena, kArenaCap, reason, signo, detail);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = pwrite(g_fd, g_arena + done, len - done,
                             static_cast<off_t>(done));
    if (n <= 0) break;
    done += static_cast<std::size_t>(n);
  }
  // A fatal report may be shorter than the hard-stall report it
  // replaces; truncate so no stale tail survives.
  (void)ftruncate(g_fd, static_cast<off_t>(done));
  (void)fsync(g_fd);
}

/// Fatal writers claim a fresh file (0) or overwrite a stall report (2).
bool acquire_fatal() noexcept {
  int expected = 0;
  if (g_state.compare_exchange_strong(expected, 1)) return true;
  if (expected == 2) return g_state.compare_exchange_strong(expected, 1);
  return false;
}

void restore_and_reraise(int signo) noexcept {
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  sigaction(signo, &dfl, nullptr);
  raise(signo);
}

void fatal_handler(int signo) {
  if (acquire_fatal()) {
    write_report_file("signal", signo, "");
    g_state.store(3, std::memory_order_release);
  } else {
    // Another thread is mid-report: give it a bounded moment so the
    // file is complete before the process dies.
    struct timespec delay{0, 1000000};  // 1 ms
    for (int i = 0;
         i < 2000 && g_state.load(std::memory_order_acquire) == 1; ++i) {
      nanosleep(&delay, nullptr);
    }
  }
  restore_and_reraise(signo);
}

[[noreturn]] void terminate_handler() {
  int expected = 0;
  if (g_state.compare_exchange_strong(expected, 1)) {
    write_report_file("terminate", 0, "");
    g_state.store(3, std::memory_order_release);
  }
  std::abort();  // our SIGABRT handler sees state 3 and just re-raises
}

}  // namespace

bool install(const InstallOptions& options) {
  if (g_installed.load(std::memory_order_acquire)) return false;
  const std::string path = options.path.string();
  if (path.empty() || path.size() >= kPathCap) return false;
  const int fd = open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  (void)ftruncate(fd, 0);
  g_fd = fd;
  std::memcpy(g_path, path.c_str(), path.size() + 1);
  g_state.store(0, std::memory_order_relaxed);

  stack_t altstack;
  std::memset(&altstack, 0, sizeof(altstack));
  altstack.ss_sp = g_altstack;
  altstack.ss_size = kAltStackCap;
  sigaltstack(&altstack, nullptr);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = fatal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_ONSTACK;
  for (std::size_t i = 0; i < kSignalCount; ++i) {
    sigaction(kSignals[i], &action, &g_saved[i]);
  }
  g_saved_terminate = std::set_terminate(terminate_handler);
  g_installed.store(true, std::memory_order_release);
  return true;
}

void uninstall() {
  if (!g_installed.load(std::memory_order_acquire)) return;
  for (std::size_t i = 0; i < kSignalCount; ++i) {
    sigaction(kSignals[i], &g_saved[i], nullptr);
  }
  std::set_terminate(g_saved_terminate);
  const bool written = g_state.load(std::memory_order_acquire) >= 2;
  if (g_fd >= 0) close(g_fd);
  g_fd = -1;
  if (!written) unlink(g_path);
  g_path[0] = '\0';
  g_state.store(0, std::memory_order_relaxed);
  g_installed.store(false, std::memory_order_release);
}

bool installed() noexcept {
  return g_installed.load(std::memory_order_acquire);
}

bool report_written() noexcept {
  return g_installed.load(std::memory_order_acquire) &&
         g_state.load(std::memory_order_acquire) >= 2;
}

void set_build_info(std::string_view version, std::string_view backend) {
  const auto copy = [](char* dst, std::size_t cap, std::string_view src) {
    const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
  };
  copy(g_build_version, sizeof(g_build_version), version);
  copy(g_build_backend, sizeof(g_build_backend), backend);
}

void refresh_metrics(const Registry& registry) {
  std::lock_guard<std::mutex> lock(g_metrics.refresh_mutex);
  const std::string text = registry.json_text();
  const int side = 1 - g_metrics.published.load(std::memory_order_relaxed);
  const int target = side < 0 || side > 1 ? 0 : side;
  g_metrics.ver[target].fetch_add(1, std::memory_order_acq_rel);
  if (text.size() < kMetricsCap) {
    std::memcpy(g_metrics.buf[target], text.data(), text.size());
    g_metrics.len[target] = text.size();
  } else {
    static constexpr char kTooBig[] = "{\"truncated\": true}";
    std::memcpy(g_metrics.buf[target], kTooBig, sizeof(kTooBig) - 1);
    g_metrics.len[target] = sizeof(kTooBig) - 1;
  }
  g_metrics.ver[target].fetch_add(1, std::memory_order_release);
  g_metrics.published.store(target, std::memory_order_release);
}

bool write_report_now(std::string_view reason, std::string_view detail) {
  if (!g_installed.load(std::memory_order_acquire)) return false;
  int expected = 0;
  if (!g_state.compare_exchange_strong(expected, 1)) return false;
  char reason_buf[64];
  char detail_buf[128];
  const auto copy = [](char* dst, std::size_t cap, std::string_view src) {
    const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
  };
  copy(reason_buf, sizeof(reason_buf), reason);
  copy(detail_buf, sizeof(detail_buf), detail);
  write_report_file(reason_buf, 0, detail_buf);
  g_state.store(2, std::memory_order_release);
  return true;
}

#else  // disabled or no signal support

bool install(const InstallOptions&) { return false; }
void uninstall() {}
bool installed() noexcept { return false; }
bool report_written() noexcept { return false; }
void set_build_info(std::string_view, std::string_view) {}
void refresh_metrics(const Registry&) {}
bool write_report_now(std::string_view, std::string_view) { return false; }

#endif

}  // namespace hv::obs::crash
