#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hv::obs {
namespace {

/// Shortest stable decimal rendering shared by both export formats.
std::string format_number(double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// JSON string escaping (control characters, quote, backslash).
std::string escape_json(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string label_block(const std::vector<std::string>& keys,
                        const std::vector<std::string>& values,
                        std::string_view extra_key = {},
                        std::string_view extra_value = {}) {
  if (keys.empty() && extra_key.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i != 0) out += ",";
    out += keys[i] + "=\"" + escape_label(values[i]) + "\"";
  }
  if (!extra_key.empty()) {
    if (!keys.empty()) out += ",";
    out.append(extra_key);
    out += "=\"";
    out.append(extra_value);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string labels_json(const std::vector<std::string>& keys,
                        const std::vector<std::string>& values) {
  std::string out = "{";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + escape_json(keys[i]) + "\":\"" + escape_json(values[i]) +
           "\"";
  }
  out += "}";
  return out;
}

void check_label_arity(const std::vector<std::string>& keys,
                       std::initializer_list<std::string_view> values,
                       const std::string& name) {
  if (values.size() != keys.size()) {
    throw std::invalid_argument("obs: metric " + name + " expects " +
                                std::to_string(keys.size()) +
                                " label value(s), got " +
                                std::to_string(values.size()));
  }
}

}  // namespace

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double value) noexcept {
#ifndef HV_OBS_DISABLED
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sketch_.observe(value);
#else
  (void)value;
#endif
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::quantile(double q) const {
  // The sketch answers with bounded relative error; the fixed buckets are
  // only a fallback for the (mid-observe) race where the sketch count
  // lags the histogram count.
  if (sketch_.count() == count()) return sketch_.quantile(q);
  return bucket_quantile(q);
}

double Histogram::bucket_quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  const std::vector<std::uint64_t> counts = bucket_counts();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double previous = cumulative;
    cumulative += static_cast<double>(counts[i]);
    if (cumulative < target || counts[i] == 0) continue;
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    // +Inf bucket: no upper bound to interpolate against; report the mean
    // of the whole distribution capped below by the last finite bound.
    if (i == bounds_.size()) return std::max(lower, mean());
    const double upper = bounds_[i];
    const double fraction =
        (target - previous) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds_.empty() ? mean() : bounds_.back();
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sketch_.reset();
}

const std::vector<double>& default_time_buckets() {
  static const std::vector<double> kBuckets = {
      1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
      1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
      1.0,  2.5,    5.0,  10.0};
  return kBuckets;
}

// --- families ---------------------------------------------------------------

Counter& CounterFamily::with(std::initializer_list<std::string_view> values) {
  check_label_arity(keys_, values, name_);
  return resolve(values, [] { return std::make_unique<Counter>(); });
}

Gauge& GaugeFamily::with(std::initializer_list<std::string_view> values) {
  check_label_arity(keys_, values, name_);
  return resolve(values, [] { return std::make_unique<Gauge>(); });
}

Histogram& HistogramFamily::with(
    std::initializer_list<std::string_view> values) {
  check_label_arity(keys_, values, name_);
  return resolve(values,
                 [this] { return std::make_unique<Histogram>(bounds_); });
}

// --- Registry ---------------------------------------------------------------

namespace {

template <typename Map, typename Make>
auto& find_or_register(Map& map, std::string_view name,
                       const std::vector<std::string>& label_keys,
                       const Make& make) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  } else if (it->second->label_keys() != label_keys) {
    throw std::invalid_argument("obs: metric " + std::string(name) +
                                " re-registered with different label keys");
  }
  return *it->second;
}

}  // namespace

CounterFamily& Registry::counter_family(std::string_view name,
                                        std::string_view help,
                                        std::vector<std::string> label_keys) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_register(counters_, name, label_keys, [&] {
    return std::unique_ptr<CounterFamily>(new CounterFamily(
        std::string(name), std::string(help), label_keys));
  });
}

GaugeFamily& Registry::gauge_family(std::string_view name,
                                    std::string_view help,
                                    std::vector<std::string> label_keys) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_register(gauges_, name, label_keys, [&] {
    return std::unique_ptr<GaugeFamily>(
        new GaugeFamily(std::string(name), std::string(help), label_keys));
  });
}

HistogramFamily& Registry::histogram_family(std::string_view name,
                                            std::string_view help,
                                            std::vector<std::string>
                                                label_keys,
                                            std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_register(histograms_, name, label_keys, [&] {
    return std::unique_ptr<HistogramFamily>(
        new HistogramFamily(std::string(name), std::string(help), label_keys,
                            std::move(bounds)));
  });
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  return counter_family(name, help, {}).with({});
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  return gauge_family(name, help, {}).with({});
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds) {
  return histogram_family(name, help, {}, std::move(bounds)).with({});
}

void Registry::write_prometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : counters_) {
    out << "# HELP " << name << " " << family->help() << "\n";
    out << "# TYPE " << name << " counter\n";
    family->for_each([&](const std::vector<std::string>& labels,
                         const Counter& counter) {
      out << name << label_block(family->label_keys(), labels) << " "
          << counter.value() << "\n";
    });
  }
  for (const auto& [name, family] : gauges_) {
    out << "# HELP " << name << " " << family->help() << "\n";
    out << "# TYPE " << name << " gauge\n";
    family->for_each([&](const std::vector<std::string>& labels,
                         const Gauge& gauge) {
      out << name << label_block(family->label_keys(), labels) << " "
          << format_number(gauge.value()) << "\n";
    });
  }
  for (const auto& [name, family] : histograms_) {
    out << "# HELP " << name << " " << family->help() << "\n";
    out << "# TYPE " << name << " histogram\n";
    family->for_each([&](const std::vector<std::string>& labels,
                         const Histogram& histogram) {
      const std::vector<std::uint64_t> counts = histogram.bucket_counts();
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < histogram.bounds().size(); ++i) {
        cumulative += counts[i];
        out << name << "_bucket"
            << label_block(family->label_keys(), labels, "le",
                           format_number(histogram.bounds()[i]))
            << " " << cumulative << "\n";
      }
      cumulative += counts.back();
      out << name << "_bucket"
          << label_block(family->label_keys(), labels, "le", "+Inf") << " "
          << cumulative << "\n";
      out << name << "_sum" << label_block(family->label_keys(), labels)
          << " " << format_number(histogram.sum()) << "\n";
      out << name << "_count" << label_block(family->label_keys(), labels)
          << " " << histogram.count() << "\n";
      // Summary-style quantile lines from the sketch (a deliberate
      // deviation from pure Prometheus histograms — see DESIGN.md).
      for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
        out << name
            << label_block(family->label_keys(), labels, "quantile", q)
            << " " << format_number(histogram.quantile(std::atof(q)))
            << "\n";
      }
    });
  }
}

std::string Registry::prometheus_text() const {
  std::ostringstream out;
  write_prometheus(out);
  return out.str();
}

void Registry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": [";
  bool first = true;
  for (const auto& [name, family] : counters_) {
    family->for_each([&](const std::vector<std::string>& labels,
                         const Counter& counter) {
      out << (first ? "" : ",") << "\n    {\"name\": \"" << name
          << "\", \"labels\": " << labels_json(family->label_keys(), labels)
          << ", \"value\": " << counter.value() << "}";
      first = false;
    });
  }
  out << (first ? "]" : "\n  ]") << ",\n  \"gauges\": [";
  first = true;
  for (const auto& [name, family] : gauges_) {
    family->for_each([&](const std::vector<std::string>& labels,
                         const Gauge& gauge) {
      out << (first ? "" : ",") << "\n    {\"name\": \"" << name
          << "\", \"labels\": " << labels_json(family->label_keys(), labels)
          << ", \"value\": " << format_number(gauge.value()) << "}";
      first = false;
    });
  }
  out << (first ? "]" : "\n  ]") << ",\n  \"histograms\": [";
  first = true;
  for (const auto& [name, family] : histograms_) {
    family->for_each([&](const std::vector<std::string>& labels,
                         const Histogram& histogram) {
      out << (first ? "" : ",") << "\n    {\"name\": \"" << name
          << "\", \"labels\": " << labels_json(family->label_keys(), labels)
          << ", \"count\": " << histogram.count()
          << ", \"sum\": " << format_number(histogram.sum())
          << ", \"p50\": " << format_number(histogram.quantile(0.5))
          << ", \"p90\": " << format_number(histogram.quantile(0.9))
          << ", \"p99\": " << format_number(histogram.quantile(0.99))
          << ", \"p999\": " << format_number(histogram.quantile(0.999))
          << ", \"buckets\": [";
      const std::vector<std::uint64_t> counts = histogram.bucket_counts();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        out << (i == 0 ? "" : ",") << "{\"le\": \""
            << (i < histogram.bounds().size()
                    ? format_number(histogram.bounds()[i])
                    : std::string("+Inf"))
            << "\", \"count\": " << counts[i] << "}";
      }
      out << "]}";
      first = false;
    });
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
}

std::string Registry::json_text() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

std::optional<double> Registry::value(
    std::string_view name,
    std::initializer_list<std::string_view> label_values) const {
  const std::vector<std::string> key(label_values.begin(),
                                     label_values.end());
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<double> found;
  if (const auto it = counters_.find(name); it != counters_.end()) {
    it->second->for_each(
        [&](const std::vector<std::string>& labels, const Counter& counter) {
          if (labels == key) found = static_cast<double>(counter.value());
        });
    return found;
  }
  if (const auto it = gauges_.find(name); it != gauges_.end()) {
    it->second->for_each(
        [&](const std::vector<std::string>& labels, const Gauge& gauge) {
          if (labels == key) found = gauge.value();
        });
    return found;
  }
  if (const auto it = histograms_.find(name); it != histograms_.end()) {
    it->second->for_each([&](const std::vector<std::string>& labels,
                             const Histogram& histogram) {
      if (labels == key) found = static_cast<double>(histogram.count());
    });
    return found;
  }
  return std::nullopt;
}

std::vector<std::string> Registry::label_values(
    std::string_view name, std::string_view label_key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> values;
  const auto collect = [&](const auto& family) {
    const auto& keys = family.label_keys();
    const auto key_it = std::find(keys.begin(), keys.end(), label_key);
    if (key_it == keys.end()) return;
    const std::size_t index =
        static_cast<std::size_t>(key_it - keys.begin());
    family.for_each(
        [&](const std::vector<std::string>& labels, const auto&) {
          values.push_back(labels[index]);
        });
  };
  if (const auto it = counters_.find(name); it != counters_.end()) {
    collect(*it->second);
  } else if (const auto g = gauges_.find(name); g != gauges_.end()) {
    collect(*g->second);
  } else if (const auto h = histograms_.find(name); h != histograms_.end()) {
    collect(*h->second);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

void Registry::visit_counters(
    const std::function<void(const std::string&,
                             const std::vector<std::string>&,
                             std::uint64_t)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : counters_) {
    family->for_each([&](const std::vector<std::string>& labels,
                         const Counter& counter) {
      fn(name, labels, counter.value());
    });
  }
}

void Registry::visit_histograms(
    const std::function<void(const std::string&,
                             const std::vector<std::string>&,
                             const std::vector<std::string>&,
                             const Histogram&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : histograms_) {
    family->for_each([&](const std::vector<std::string>& labels,
                         const Histogram& histogram) {
      fn(name, family->label_keys(), labels, histogram);
    });
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, family] : counters_) family->reset_all();
  for (auto& [name, family] : gauges_) family->reset_all();
  for (auto& [name, family] : histograms_) family->reset_all();
}

Registry& default_registry() {
  static Registry* const registry = new Registry();  // never destroyed
  return *registry;
}

}  // namespace hv::obs
