// hv::obs — hierarchical wall-clock tracing for the pipeline stages.
//
// A Span is an RAII scope: it notes the steady-clock time on entry and
// records a completed event into its Tracer on exit.  Nesting is tracked
// per thread (depth + parent name), so the recorded events reconstruct
// the stage hierarchy build_archives -> metadata -> crawl/check -> store
// without any coordination between threads.
//
// `write_chrome_trace` emits the events as Chrome trace_event JSON
// (complete "X" events), loadable in chrome://tracing or Perfetto; each
// OS thread gets its own lane, so worker spans show pool parallelism.
//
// Under HV_OBS_DISABLED a Span never reads the clock and records nothing.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hv::obs {

/// One completed span, times in microseconds since the tracer's epoch.
struct SpanEvent {
  std::string name;
  std::string category;
  std::string parent;  ///< enclosing span's name on this thread ("" = root)
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint32_t thread_id = 0;  ///< small sequential id, 1-based
  std::uint32_t depth = 0;      ///< nesting depth on this thread, 0 = root
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  Tracer();

  /// Completed events in completion order (copy, thread-safe).
  std::vector<SpanEvent> events() const;
  std::size_t event_count() const;
  void clear();

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  void write_chrome_trace(std::ostream& out) const;
  std::string chrome_trace_text() const;

 private:
  friend class Span;
  void record(SpanEvent event);
  std::uint64_t since_epoch_us(
      std::chrono::steady_clock::time_point when) const noexcept;

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanEvent> events_;
};

/// RAII span; records into the tracer when it goes out of scope.
class Span {
 public:
  Span(Tracer& tracer, std::string name, std::string category = "pipeline");
  ~Span();

  /// Attaches a key=value argument (shown in the trace viewer).
  void arg(std::string key, std::string value);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#ifndef HV_OBS_DISABLED
  Tracer* tracer_;
  SpanEvent event_;
  std::chrono::steady_clock::time_point start_;
#endif
};

/// The process-wide tracer used by the pipeline instrumentation.
Tracer& default_tracer();

}  // namespace hv::obs
