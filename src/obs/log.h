// hv::obs — structured logging with levels, key=value fields, and a
// ring-buffer sink the tests can inspect.
//
//   obs::default_log().info("snapshot complete",
//                           {{"snapshot", label}, {"pages", "1234"}});
//
// Entries below the active level are dropped before any formatting.
// Every accepted entry lands in a fixed-capacity ring buffer (`recent()`
// returns the surviving tail, oldest first) and, when a mirror stream is
// attached (the CLI wires stderr via --log-level), is rendered as
//   [LEVEL] message key=value key=value
//
// Under HV_OBS_DISABLED `write` is a no-op.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hv::obs {

enum class LogLevel : std::uint8_t { kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level) noexcept;
/// Parses "debug" / "info" / "warn" / "error" / "off" (case-sensitive).
std::optional<LogLevel> log_level_from_name(std::string_view name) noexcept;

struct LogField {
  std::string key;
  std::string value;
};

struct LogEntry {
  LogLevel level = LogLevel::kInfo;
  std::string message;
  std::vector<LogField> fields;
  std::uint64_t sequence = 0;  ///< monotonically increasing per Log

  /// "[INFO] message key=value ..." — the mirror-stream rendering.
  std::string format() const;
};

class Log {
 public:
  explicit Log(std::size_t ring_capacity = 256);

  LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }

  /// Attaches a stream every accepted entry is also rendered to
  /// (nullptr detaches).  The stream must outlive the logger's use.
  void set_stream(std::ostream* stream);

  void write(LogLevel level, std::string_view message,
             std::initializer_list<LogField> fields = {});
  void debug(std::string_view message,
             std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kDebug, message, fields);
  }
  void info(std::string_view message,
            std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kInfo, message, fields);
  }
  void warn(std::string_view message,
            std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kWarn, message, fields);
  }
  void error(std::string_view message,
             std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kError, message, fields);
  }

  /// Ring-buffer contents, oldest surviving entry first.
  std::vector<LogEntry> recent() const;
  /// Total entries accepted since construction (>= recent().size()).
  std::uint64_t total_logged() const noexcept {
    return sequence_.load(std::memory_order_relaxed);
  }
  std::size_t ring_capacity() const noexcept { return capacity_; }
  void clear();

 private:
  std::atomic<LogLevel> level_{LogLevel::kInfo};
  std::atomic<std::uint64_t> sequence_{0};
  const std::size_t capacity_;

  mutable std::mutex mutex_;
  std::vector<LogEntry> ring_;  ///< fixed capacity, sequence % capacity
  std::ostream* stream_ = nullptr;
};

/// The process-wide logger used by the pipeline and the CLI.
Log& default_log();

}  // namespace hv::obs
