// hv::obs::json — a minimal JSON reader for the observability artifacts
// the framework itself writes (run_report.json, the live monitor
// snapshot, metrics --format json).  It is a consumer for our own
// well-formed output, not a general-purpose parser: numbers are doubles,
// \uXXXX escapes decode the BMP only, and inputs deeper than ~100 levels
// are rejected.  No third-party dependency, by design (the container
// bakes in nothing beyond the toolchain).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hv::obs::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Insertion order preserved (reports are written deterministically).
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const noexcept { return type == Type::kObject; }
  bool is_array() const noexcept { return type == Type::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const noexcept;

  /// Conveniences for "read field with fallback" consumers.
  double number_or(std::string_view key, double fallback) const noexcept;
  std::string string_or(std::string_view key,
                        std::string_view fallback) const;
  bool bool_or(std::string_view key, bool fallback) const noexcept;
};

/// Parses a complete JSON document; nullopt on any syntax error or
/// trailing garbage.
std::optional<Value> parse(std::string_view text);

}  // namespace hv::obs::json
