// hv::obs::crash — fatal-signal crash reports fed by the flight
// recorder (fdr.h).
//
// install() pre-opens the report fd, pre-commits a formatting arena and
// hooks SIGSEGV/SIGBUS/SIGABRT/SIGFPE/SIGILL (on an alternate stack)
// plus std::terminate.  When the process dies, the handler formats
// `crash_report.json` — reason + signal, build/backend info, and per
// registered thread the last-N flight-recorder events, the live
// HV_PROF_SCOPE stack, the in-flight capture breadcrumb (domain /
// year / WARC offset) and drop accounting, plus the most recent metrics
// snapshot — then restores the default disposition and re-raises so the
// exit status still tells the truth.
//
// Async-signal-safety contract: after install() the handler only calls
// write/pwrite/ftruncate/fsync/nanosleep, reads fdr's lock-free
// structures and prof::scope_name_raw's immutable name table, and
// formats into a static arena.  No allocation, no locks, no stdio.
// The metrics snapshot is double-buffered: refresh_metrics() (called
// by the timeseries sampler from normal context) renders the registry
// into the spare buffer and atomically publishes it; the handler only
// ever copies the published side.
//
// The stall watchdog (health.h, `hard_stall_after_s`) escalates into
// the same report via write_report_now("hard-stall", ...) — the run
// keeps going, but the evidence is on disk.  First writer wins, with
// one exception: a fatal signal may overwrite a hard-stall report,
// because the crash that follows a stall is the better evidence.
//
// Under HV_OBS_DISABLED install() returns false and nothing is hooked.
#pragma once

#include <filesystem>
#include <string_view>

namespace hv::obs {
class Registry;
}  // namespace hv::obs

namespace hv::obs::crash {

constexpr bool available() noexcept {
#ifdef HV_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

struct InstallOptions {
  std::filesystem::path path;  ///< where crash_report.json lands
};

/// Opens the report fd, installs the signal + terminate handlers.
/// False when already installed, the path can't be opened, or the
/// build has observability compiled out.  Not thread-safe with itself.
bool install(const InstallOptions& options);

/// Restores the previous handlers, closes the fd and — when no report
/// was written — unlinks the (empty) report file so clean runs leave
/// nothing behind.
void uninstall();

bool installed() noexcept;
bool report_written() noexcept;

/// Records the version/backend strings embedded in reports (truncating
/// copies into static storage; call before or after install).
void set_build_info(std::string_view version, std::string_view backend);

/// Renders `registry` into the spare metrics buffer and publishes it
/// for the handler.  Normal context only; the timeseries sampler calls
/// this every tick.
void refresh_metrics(const Registry& registry);

/// Writes a report from normal context without terminating — the
/// watchdog's hard-stall escalation.  `detail` names the trigger (the
/// stalled worker).  False when not installed or a fatal report
/// already claimed the file.
bool write_report_now(std::string_view reason, std::string_view detail = {});

}  // namespace hv::obs::crash
