// hv::obs::fdr — an always-on flight data recorder for crash forensics.
//
// The sampling profiler (prof.h) answers "where does CPU go"; the
// observatory (health.h) answers "is the run healthy".  Neither can
// answer the question a dead process leaves behind: *what was each
// thread doing right before the end?*  This layer keeps, per thread, a
// fixed ring of compact binary events — monotonic timestamp, interned
// scope id, event kind, one u64 argument — fed by the existing
// instrumentation points (pipeline stage enter/exit, capture begin with
// a domain/year/WARC-offset breadcrumb, tokenizer/tree-builder state
// milestones, checker rule fires, quarantines, store adds).  The ring
// overwrites oldest-first and counts what it overwrote; nothing ever
// blocks, allocates or takes a lock on the emit path, so the recorder
// is cheap enough to leave on for every run.
//
// Signal-safety contract (mirrors prof.cc's ring rules):
//   * emit() is wait-free for the owning thread: plain stores into the
//     thread's own slot, then a release store of the cursor.  It is the
//     only writer of its ring.
//   * The crash handler (crash.h) reads rings, breadcrumbs, scope names
//     and the thread table from *any* thread inside a signal handler:
//     every structure it touches is either immutable after publication
//     (scope names, thread records) or tolerates a torn read (an
//     in-flight ring slot, a breadcrumb mid-update — the seqlock
//     sequence tells the reader to retry or mark the read torn).
//   * Thread records are allocated on first use from normal context and
//     intentionally never freed; a thread that exits is marked dead but
//     stays in the table so the crash report can still show its last
//     moments.
//
// Under HV_OBS_DISABLED every probe compiles to a no-op and
// available() is false.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hv::obs::fdr {

/// Interned scope identifier (fdr's own table — names are readable from
/// a signal handler, unlike prof's mutex-guarded table).  Id 0 is "".
using ScopeId = std::uint16_t;
inline constexpr ScopeId kNoScope = 0;

/// Scope-table bounds: every name the codebase interns is a stage,
/// snapshot label, tokenizer group, insertion mode, rule or error-kind
/// name — a few dozen in practice.
inline constexpr std::size_t kMaxScopes = 256;
inline constexpr std::size_t kMaxScopeName = 48;

/// Ring capacity per thread (events).  At milestone granularity (a
/// handful of events per page) this is minutes of history; the crash
/// report dumps the newest kReportEvents of them.
inline constexpr std::size_t kRingCapacity = 256;
inline constexpr std::size_t kReportEvents = 32;

/// Thread-table bound; registrations beyond it are counted as drops.
inline constexpr std::size_t kMaxThreads = 64;

/// Breadcrumb string bounds (truncating copies).
inline constexpr std::size_t kCrumbDomain = 64;
inline constexpr std::size_t kCrumbSnapshot = 24;
inline constexpr std::size_t kThreadName = 16;

enum class EventKind : std::uint8_t {
  kNone = 0,
  kStageEnter,      ///< scope = "stage:snapshot", arg = total items
  kStageExit,       ///< scope = "stage:snapshot", arg = items done
  kCaptureBegin,    ///< scope = snapshot label, arg = WARC offset
  kCaptureEnd,      ///< scope = snapshot label, arg = WARC offset
  kParseBegin,      ///< arg = document byte size
  kParseEnd,        ///< arg = parse error count
  kTokenizerState,  ///< scope = tok group, arg = group changes so far
  kTreeMode,        ///< scope = insertion mode, arg = mode changes so far
  kRuleFire,        ///< scope = rule name, arg = violations emitted
  kQuarantine,      ///< scope = archive error kind, arg = WARC offset
  kStoreAdd,        ///< arg = year index
  kStall,           ///< scope = worker name, arg = stalled seconds
};

/// Stable kebab-case name for a kind ("?" for unknown).  Signal-safe:
/// returns pointers to string literals.
const char* kind_name(EventKind kind) noexcept;

struct Event {
  std::uint64_t t_ns = 0;  ///< steady-clock nanoseconds
  std::uint64_t arg = 0;
  ScopeId scope = kNoScope;
  EventKind kind = EventKind::kNone;
};

constexpr bool available() noexcept {
#ifdef HV_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

/// Interns `name` into the recorder's signal-safe scope table, returning
/// a stable id.  Thread-safe; repeated calls return the same id.  Once
/// the table is full every new name maps to kNoScope.  Call sites cache
/// the result (static arrays / function-local statics).
ScopeId intern(std::string_view name);

/// Name for an id.  Signal-safe: reads an immutable published slot and
/// returns a pointer that stays valid for the process lifetime ("" for
/// kNoScope and unpublished ids).
const char* scope_name(ScopeId id) noexcept;

#ifndef HV_OBS_DISABLED
namespace detail {

/// One registered thread.  The owning thread writes; the crash handler
/// reads from any thread.  See the signal-safety contract above.
struct ThreadRec {
  char name[kThreadName] = {0};
  std::atomic<bool> alive{true};

  Event ring[kRingCapacity];
  /// Total events ever emitted; slot = (cursor - 1) % kRingCapacity is
  /// the newest event once the release store lands.
  std::atomic<std::uint64_t> cursor{0};

  /// Capture breadcrumb, seqlock-protected: odd sequence = mid-update.
  std::atomic<std::uint32_t> crumb_seq{0};
  char crumb_domain[kCrumbDomain] = {0};
  char crumb_snapshot[kCrumbSnapshot] = {0};
  std::uint32_t crumb_year = 0;  ///< study year (0 = none)
  std::uint64_t crumb_offset = 0;
  std::atomic<bool> crumb_active{false};  ///< in-flight vs last-completed

  /// The prof attribution stack of this thread (address of its
  /// thread-local; valid while alive — the crash handler only reads it
  /// for threads still marked alive).
  void* prof_stack = nullptr;
};

/// Signal-safe thread-table access for the crash writer.
std::size_t thread_count() noexcept;
const ThreadRec* thread_at(std::size_t index) noexcept;

}  // namespace detail
#endif

/// Appends an event to the calling thread's ring (registering the
/// thread on first use — that one-time path may allocate, so the very
/// first event per thread must come from normal context; every call in
/// this codebase does).  Never blocks; overwrites the oldest event when
/// the ring is full.
void emit(EventKind kind, ScopeId scope = kNoScope,
          std::uint64_t arg = 0) noexcept;

/// Sets the calling thread's in-flight capture breadcrumb.  `year` is
/// the study year (e.g. 2016), `offset` the capture's WARC offset.
void set_capture(std::string_view domain, std::string_view snapshot,
                 std::uint32_t year, std::uint64_t offset) noexcept;

/// Marks the breadcrumb completed (fields are kept so a crash between
/// captures still names the last page this thread touched).
void end_capture() noexcept;

/// Names the calling thread in the recorder (registering it if
/// needed).  prof::ThreadGuard calls this, so pipeline workers and the
/// CLI main thread are named for free.
void set_thread_name(std::string_view name) noexcept;

/// Threads that could not be registered because the table was full.
std::uint64_t thread_drops() noexcept;

// --- snapshots (normal context: tests, `hv crash`, report embedding) --------

struct Breadcrumb {
  std::string domain;
  std::string snapshot;
  std::uint32_t year = 0;
  std::uint64_t offset = 0;
  bool active = false;  ///< capture in flight (vs last completed)
  bool valid = false;   ///< a breadcrumb was ever set
};

struct ThreadSnapshot {
  std::string name;
  bool alive = false;
  std::uint64_t events_total = 0;
  std::uint64_t dropped = 0;            ///< overwritten (lost) events
  std::vector<Event> recent;            ///< oldest-first, newest last
  Breadcrumb crumb;
  std::vector<std::string> prof_stack;  ///< root-first; leaf appended
};

/// Copies every registered thread's state.  Not async-signal-safe (the
/// crash handler has its own reader); intended for tests and tooling.
std::vector<ThreadSnapshot> snapshot_all();

/// Test hook: forgets all registered threads and drops (records leak by
/// design).  Only call when no other thread is emitting.
void reset_for_test();

}  // namespace hv::obs::fdr
