#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/crash.h"
#include "obs/fdr.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/timeseries.h"

namespace hv::obs {
namespace {

std::string format_number(double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string escape_json(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::int64_t steady_now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#ifndef HV_OBS_DISABLED
/// hv_health_* series, resolved once per process.
struct HealthMetrics {
  Counter& stalls;
  Counter& heartbeats;
  Counter& slow_page_admissions;

  static HealthMetrics& get() {
    static HealthMetrics* const metrics = new HealthMetrics{
        default_registry().counter("hv_health_stalls_total",
                                   "Worker stall episodes flagged by the "
                                   "watchdog"),
        default_registry().counter("hv_health_heartbeats_total",
                                   "Worker heartbeats recorded"),
        default_registry().counter("hv_health_slow_page_admissions_total",
                                   "Pages admitted into the slow-page "
                                   "top-K tracker")};
    return *metrics;
  }
};
#endif

}  // namespace

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

// --- SlowPageTracker --------------------------------------------------------

SlowPageTracker::SlowPageTracker(std::size_t capacity)
    : capacity_(capacity) {
  threshold_.store(-1.0, std::memory_order_relaxed);
}

bool SlowPageTracker::would_admit(double seconds) const noexcept {
#ifndef HV_OBS_DISABLED
  return capacity_ > 0 &&
         seconds > threshold_.load(std::memory_order_relaxed);
#else
  (void)seconds;
  return false;
#endif
}

bool SlowPageTracker::record(std::string_view domain,
                             std::string_view snapshot,
                             std::uint64_t warc_offset, double seconds,
                             std::size_t bytes,
                             std::string_view hottest_scope) {
#ifndef HV_OBS_DISABLED
  if (capacity_ == 0) return false;
  // Once the tracker is full, `threshold_` is the K-th slowest latency;
  // faster pages bounce off this relaxed load without touching the lock.
  if (seconds <= threshold_.load(std::memory_order_relaxed)) return false;
  const auto slower = [](const SlowPage& a, const SlowPage& b) {
    return a.seconds > b.seconds;  // min-heap on seconds
  };
  std::lock_guard<std::mutex> lock(mutex_);
  if (pages_.size() < capacity_) {
    pages_.push_back({std::string(domain), std::string(snapshot),
                      warc_offset, seconds, bytes,
                      std::string(hottest_scope)});
    std::push_heap(pages_.begin(), pages_.end(), slower);
    if (pages_.size() == capacity_) {
      threshold_.store(pages_.front().seconds, std::memory_order_relaxed);
    }
  } else {
    if (seconds <= pages_.front().seconds) return false;  // raced below
    std::pop_heap(pages_.begin(), pages_.end(), slower);
    pages_.back() = {std::string(domain), std::string(snapshot), warc_offset,
                     seconds, bytes, std::string(hottest_scope)};
    std::push_heap(pages_.begin(), pages_.end(), slower);
    threshold_.store(pages_.front().seconds, std::memory_order_relaxed);
  }
  HealthMetrics::get().slow_page_admissions.inc();
  return true;
#else
  (void)domain;
  (void)snapshot;
  (void)warc_offset;
  (void)seconds;
  (void)bytes;
  (void)hottest_scope;
  return false;
#endif
}

std::vector<SlowPage> SlowPageTracker::worst() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SlowPage> pages = pages_;
  std::sort(pages.begin(), pages.end(),
            [](const SlowPage& a, const SlowPage& b) {
              return a.seconds > b.seconds;
            });
  return pages;
}

void SlowPageTracker::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  pages_.clear();
  threshold_.store(-1.0, std::memory_order_relaxed);
}

// --- HeartbeatBoard ---------------------------------------------------------

int HeartbeatBoard::register_worker(std::string name, std::string stage) {
#ifndef HV_OBS_DISABLED
  auto slot = std::make_unique<Slot>();
  slot->name = std::move(name);
  slot->stage = std::move(stage);
  slot->last_beat_us.store(steady_now_us(), std::memory_order_relaxed);
  slot->active.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.push_back(std::move(slot));
  return static_cast<int>(slots_.size()) - 1;
#else
  (void)name;
  (void)stage;
  return -1;
#endif
}

void HeartbeatBoard::beat(int handle, std::uint64_t items_done) noexcept {
#ifndef HV_OBS_DISABLED
  if (handle < 0) return;
  Slot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (static_cast<std::size_t>(handle) >= slots_.size()) return;
    slot = slots_[static_cast<std::size_t>(handle)].get();
  }
  slot->items.store(items_done, std::memory_order_relaxed);
  slot->beats.fetch_add(1, std::memory_order_relaxed);
  slot->last_beat_us.store(steady_now_us(), std::memory_order_relaxed);
  slot->flagged.store(false, std::memory_order_relaxed);
  HealthMetrics::get().heartbeats.inc();
#else
  (void)handle;
  (void)items_done;
#endif
}

void HeartbeatBoard::deregister(int handle) noexcept {
#ifndef HV_OBS_DISABLED
  if (handle < 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<std::size_t>(handle) >= slots_.size()) return;
  slots_[static_cast<std::size_t>(handle)]->active.store(
      false, std::memory_order_relaxed);
#else
  (void)handle;
#endif
}

std::vector<WorkerStats> HeartbeatBoard::stats() const {
  std::vector<WorkerStats> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    out.push_back({slot->name, slot->stage,
                   slot->items.load(std::memory_order_relaxed),
                   slot->beats.load(std::memory_order_relaxed),
                   slot->active.load(std::memory_order_relaxed)});
  }
  return out;
}

// --- RunHealth --------------------------------------------------------------

RunHealth::RunHealth(RunHealthOptions options)
    : options_(std::move(options)), slow_(options_.slow_page_capacity) {}

RunHealth::~RunHealth() { stop(); }

void RunHealth::set_config_summary(std::string summary) {
  std::lock_guard<std::mutex> lock(config_mutex_);
  config_summary_ = std::move(summary);
}

void RunHealth::start() {
#ifndef HV_OBS_DISABLED
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (running_) return;
  running_ = true;
  watchdog_ = std::thread([this] { watchdog_loop(); });
  if (!options_.live_path.empty()) {
    reporter_ = std::thread([this] { reporter_loop(); });
  }
  if (!options_.timeseries_path.empty()) {
    sampler_ = std::make_unique<TimeseriesSampler>(default_registry());
    sampler_->start(
        {options_.timeseries_path, options_.timeseries_period_s});
  }
#else
  // Graceful degradation: leave a marker instead of a silent void so
  // `hv monitor` can explain why there is no live data.
  write_live_file(/*complete=*/true);
#endif
}

void RunHealth::stop() {
#ifndef HV_OBS_DISABLED
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    running_ = false;
  }
  wake_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  if (reporter_.joinable()) reporter_.join();
  if (sampler_ != nullptr) sampler_->stop();
  write_live_file(/*complete=*/true);
#endif
}

void RunHealth::watchdog_loop() {
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (running_) {
    wake_.wait_for(
        lock,
        std::chrono::duration<double>(options_.watchdog_interval_s),
        [this] { return !running_; });
    if (!running_) break;
    lock.unlock();
    watchdog_scan();
    lock.lock();
  }
}

void RunHealth::reporter_loop() {
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (running_) {
    wake_.wait_for(lock,
                   std::chrono::duration<double>(options_.live_period_s),
                   [this] { return !running_; });
    if (!running_) break;
    lock.unlock();
    write_live_file(/*complete=*/false);
    lock.lock();
  }
}

void RunHealth::watchdog_scan() {
#ifndef HV_OBS_DISABLED
  const std::int64_t now_us = steady_now_us();
  std::vector<HeartbeatBoard::Slot*> slots;
  {
    std::lock_guard<std::mutex> lock(board_.mutex_);
    slots.reserve(board_.slots_.size());
    for (const auto& slot : board_.slots_) slots.push_back(slot.get());
  }
  for (HeartbeatBoard::Slot* slot : slots) {
    if (!slot->active.load(std::memory_order_relaxed)) continue;
    const std::int64_t last =
        slot->last_beat_us.load(std::memory_order_relaxed);
    const double age = static_cast<double>(now_us - last) / 1e6;
    if (age < options_.stall_after_s) continue;
    // A hard stall escalates into a crash-style forensic report (once
    // per run; write_report_now is first-writer-wins anyway) so an
    // operator gets breadcrumbs even when the run never dies.
    if (options_.hard_stall_after_s > 0.0 &&
        age >= options_.hard_stall_after_s &&
        !hard_stall_reported_.exchange(true, std::memory_order_relaxed)) {
      fdr::emit(fdr::EventKind::kStall, fdr::intern(slot->name),
                static_cast<std::uint64_t>(age));
      const bool written =
          crash::write_report_now("hard-stall", slot->name);
      default_log().error(
          "hard stall escalated",
          {{"worker", slot->name},
           {"stalled_s", format_number(age)},
           {"report_written", written ? "true" : "false"}});
    }
    // One event per silence episode; the next beat clears the flag.
    if (slot->flagged.exchange(true, std::memory_order_relaxed)) continue;
    StallEvent event{slot->name, slot->stage, age,
                     slot->items.load(std::memory_order_relaxed)};
    {
      std::lock_guard<std::mutex> lock(stall_mutex_);
      stalls_.push_back(event);
    }
    HealthMetrics::get().stalls.inc();
    default_log().warn(
        "worker stalled",
        {{"worker", event.worker},
         {"stage", event.stage},
         {"stalled_s", format_number(event.stalled_seconds)},
         {"items_done", std::to_string(event.items_done)}});
  }
#endif
}

std::size_t RunHealth::stage_begin(std::string stage, std::string snapshot,
                                   std::uint64_t total_items) {
#ifndef HV_OBS_DISABLED
  auto state = std::make_unique<StageState>();
  state->stage = std::move(stage);
  state->snapshot = std::move(snapshot);
  state->total = total_items;
  state->start = std::chrono::steady_clock::now();
  state->fdr_scope = fdr::intern(state->snapshot.empty()
                                     ? state->stage
                                     : state->stage + ":" +
                                           state->snapshot);
  fdr::emit(fdr::EventKind::kStageEnter, state->fdr_scope, total_items);
  std::lock_guard<std::mutex> lock(stage_mutex_);
  stages_.push_back(std::move(state));
  return stages_.size() - 1;
#else
  (void)stage;
  (void)snapshot;
  (void)total_items;
  return 0;
#endif
}

void RunHealth::stage_advance(std::size_t handle,
                              std::uint64_t items) noexcept {
#ifndef HV_OBS_DISABLED
  std::lock_guard<std::mutex> lock(stage_mutex_);
  if (handle >= stages_.size()) return;
  stages_[handle]->done.fetch_add(items, std::memory_order_relaxed);
#else
  (void)handle;
  (void)items;
#endif
}

void RunHealth::stage_end(std::size_t handle) {
#ifndef HV_OBS_DISABLED
  std::lock_guard<std::mutex> lock(stage_mutex_);
  if (handle >= stages_.size()) return;
  StageState& state = *stages_[handle];
  if (state.finished) return;
  state.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - state.start)
                      .count();
  state.finished = true;
  fdr::emit(fdr::EventKind::kStageExit, state.fdr_scope,
            state.done.load(std::memory_order_relaxed));
#else
  (void)handle;
#endif
}

std::vector<StageRecord> RunHealth::stage_records() const {
  std::vector<StageRecord> out;
  std::lock_guard<std::mutex> lock(stage_mutex_);
  out.reserve(stages_.size());
  for (const auto& state : stages_) {
    StageRecord record;
    record.stage = state->stage;
    record.snapshot = state->snapshot;
    record.items = state->done.load(std::memory_order_relaxed);
    record.finished = state->finished;
    record.seconds =
        state->finished
            ? state->seconds
            : std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - state->start)
                  .count();
    out.push_back(std::move(record));
  }
  return out;
}

ProgressView RunHealth::progress() const {
  ProgressView view;
  std::lock_guard<std::mutex> lock(stage_mutex_);
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    const StageState& state = **it;
    if (state.finished) continue;
    view.stage = state.stage;
    view.snapshot = state.snapshot;
    view.done = state.done.load(std::memory_order_relaxed);
    view.total = state.total;
    view.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - state.start)
                         .count();
    view.active = true;
    if (view.elapsed_s > 0.0 && view.done > 0) {
      view.rate = static_cast<double>(view.done) / view.elapsed_s;
      if (view.total > view.done) {
        view.eta_s = static_cast<double>(view.total - view.done) / view.rate;
      }
    }
    return view;
  }
  return view;
}

std::vector<StallEvent> RunHealth::stall_events() const {
  std::lock_guard<std::mutex> lock(stall_mutex_);
  return stalls_;
}

void RunHealth::write_report(std::ostream& out,
                             const Registry& registry) const {
#ifdef HV_OBS_DISABLED
  (void)registry;
  out << "{\n  \"version\": 1,\n  \"obs_disabled\": true\n}\n";
#else
  std::string summary;
  {
    std::lock_guard<std::mutex> lock(config_mutex_);
    summary = config_summary_;
  }
  out << "{\n  \"version\": 1,\n  \"obs_disabled\": false,\n";
  out << "  \"config\": {\"hash\": \"" << hex64(fnv1a64(summary))
      << "\", \"summary\": \"" << escape_json(summary) << "\"},\n";

  // Counters: the pipeline naming scheme (DESIGN.md section 7) summed
  // across snapshots.
  const auto sum_over_snapshots = [&](std::string_view name,
                                      std::string_view reason = {}) {
    double total = 0.0;
    for (const std::string& snapshot :
         registry.label_values(name, "snapshot")) {
      const auto value = reason.empty()
                             ? registry.value(name, {snapshot})
                             : registry.value(name, {snapshot, reason});
      total += value.value_or(0.0);
    }
    return total;
  };
  out << "  \"counters\": {\"records_read\": "
      << format_number(
             sum_over_snapshots("hv_pipeline_records_read_total"))
      << ", \"pages_checked\": "
      << format_number(
             sum_over_snapshots("hv_pipeline_pages_checked_total"))
      << ", \"drops\": {";
  bool first = true;
  for (const std::string& reason : registry.label_values(
           "hv_pipeline_filter_drops_total", "reason")) {
    out << (first ? "" : ", ") << "\"" << escape_json(reason) << "\": "
        << format_number(
               sum_over_snapshots("hv_pipeline_filter_drops_total", reason));
    first = false;
  }
  // Quarantined corrupt records by archive::ReadError kind (empty when
  // the archives were clean — DESIGN.md section 12).
  out << "}, \"quarantined\": {";
  first = true;
  for (const std::string& kind : registry.label_values(
           "hv_pipeline_quarantined_total", "kind")) {
    out << (first ? "" : ", ") << "\"" << escape_json(kind) << "\": "
        << format_number(
               sum_over_snapshots("hv_pipeline_quarantined_total", kind));
    first = false;
  }
  out << "}},\n";

  // Byte accounting (arena / interner / stream buffers).
  const auto scalar = [&](std::string_view name) {
    return format_number(registry.value(name).value_or(0.0));
  };
  out << "  \"memory\": {\"arena_bytes_total\": "
      << scalar("hv_html_arena_bytes_total") << ", \"arena_peak_bytes\": "
      << scalar("hv_html_arena_peak_bytes") << ", \"dom_nodes_total\": "
      << scalar("hv_html_dom_nodes_total")
      << ", \"interner_local_names_total\": "
      << scalar("hv_html_interner_local_names_total")
      << ", \"stream_buffer_bytes\": "
      << scalar("hv_pipeline_stream_buffer_bytes") << "},\n";

  // CPU attribution from the sampling profiler (prof.h); merged across
  // threads at drain time.  {"enabled": false} when no session ran.
  out << "  \"profile\": ";
  prof::profiler().write_profile_json(out);
  out << ",\n";

  out << "  \"stages\": [";
  first = true;
  for (const StageRecord& stage : stage_records()) {
    out << (first ? "" : ",") << "\n    {\"stage\": \""
        << escape_json(stage.stage) << "\", \"snapshot\": \""
        << escape_json(stage.snapshot) << "\", \"seconds\": "
        << format_number(stage.seconds) << ", \"items\": " << stage.items
        << ", \"finished\": " << (stage.finished ? "true" : "false") << "}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << ",\n";

  out << "  \"percentiles\": [";
  first = true;
  registry.visit_histograms([&](const std::string& name,
                                const std::vector<std::string>& label_keys,
                                const std::vector<std::string>& label_values,
                                const Histogram& histogram) {
    if (histogram.count() == 0) return;
    out << (first ? "" : ",") << "\n    {\"name\": \"" << escape_json(name)
        << "\", \"labels\": {";
    for (std::size_t i = 0; i < label_keys.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\"" << escape_json(label_keys[i])
          << "\":\"" << escape_json(label_values[i]) << "\"";
    }
    out << "}, \"count\": " << histogram.count()
        << ", \"mean\": " << format_number(histogram.mean());
    static constexpr std::pair<const char*, double> kQuantiles[] = {
        {"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}, {"p999", 0.999}};
    for (const auto& [label, q] : kQuantiles) {
      out << ", \"" << label
          << "\": " << format_number(histogram.quantile(q));
    }
    out << "}";
    first = false;
  });
  out << (first ? "]" : "\n  ]") << ",\n";

  out << "  \"slow_pages\": [";
  first = true;
  for (const SlowPage& page : slow_.worst()) {
    out << (first ? "" : ",") << "\n    {\"domain\": \""
        << escape_json(page.domain) << "\", \"snapshot\": \""
        << escape_json(page.snapshot) << "\", \"warc_offset\": "
        << page.warc_offset << ", \"seconds\": "
        << format_number(page.seconds) << ", \"bytes\": " << page.bytes
        << ", \"hottest_scope\": \"" << escape_json(page.hottest_scope)
        << "\"}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << ",\n";

  out << "  \"workers\": [";
  first = true;
  for (const WorkerStats& worker : board_.stats()) {
    out << (first ? "" : ",") << "\n    {\"name\": \""
        << escape_json(worker.name) << "\", \"stage\": \""
        << escape_json(worker.stage) << "\", \"items\": " << worker.items
        << ", \"beats\": " << worker.beats << ", \"active\": "
        << (worker.active ? "true" : "false") << "}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << ",\n";

  out << "  \"stalls\": [";
  first = true;
  for (const StallEvent& stall : stall_events()) {
    out << (first ? "" : ",") << "\n    {\"worker\": \""
        << escape_json(stall.worker) << "\", \"stage\": \""
        << escape_json(stall.stage) << "\", \"stalled_seconds\": "
        << format_number(stall.stalled_seconds) << ", \"items_done\": "
        << stall.items_done << "}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
#endif
}

void RunHealth::write_live_snapshot(std::ostream& out, bool complete) const {
#ifdef HV_OBS_DISABLED
  out << "{\"version\": 1, \"obs_disabled\": true, \"complete\": "
      << (complete ? "true" : "false") << "}\n";
#else
  std::string summary;
  {
    std::lock_guard<std::mutex> lock(config_mutex_);
    summary = config_summary_;
  }
  const ProgressView view = progress();
  out << "{\"version\": 1, \"obs_disabled\": false, \"complete\": "
      << (complete ? "true" : "false") << ",\n \"config_hash\": \""
      << hex64(fnv1a64(summary)) << "\",\n \"progress\": {\"stage\": \""
      << escape_json(view.stage) << "\", \"snapshot\": \""
      << escape_json(view.snapshot) << "\", \"done\": " << view.done
      << ", \"total\": " << view.total << ", \"elapsed_s\": "
      << format_number(view.elapsed_s) << ", \"rate\": "
      << format_number(view.rate) << ", \"eta_s\": "
      << format_number(view.eta_s) << ", \"active\": "
      << (view.active ? "true" : "false") << "},\n \"workers\": [";
  bool first = true;
  std::uint64_t items_total = 0;
  std::size_t active_workers = 0;
  for (const WorkerStats& worker : board_.stats()) {
    items_total += worker.items;
    if (worker.active) ++active_workers;
    out << (first ? "" : ",") << "\n  {\"name\": \""
        << escape_json(worker.name) << "\", \"items\": " << worker.items
        << ", \"beats\": " << worker.beats << ", \"active\": "
        << (worker.active ? "true" : "false") << "}";
    first = false;
  }
  out << (first ? "]" : "\n ]") << ",\n \"active_workers\": "
      << active_workers << ", \"items_done\": " << items_total
      << ", \"stall_count\": " << stall_events().size()
      << ", \"prof_samples\": " << prof::profiler().sample_count()
      << ",\n \"slow_pages\": [";
  first = true;
  std::size_t shown = 0;
  for (const SlowPage& page : slow_.worst()) {
    if (++shown > 3) break;  // headline suspects only; the report has all
    out << (first ? "" : ",") << "\n  {\"domain\": \""
        << escape_json(page.domain) << "\", \"seconds\": "
        << format_number(page.seconds) << "}";
    first = false;
  }
  out << (first ? "]" : "\n ]") << "}\n";
#endif
}

bool RunHealth::write_live_file(bool complete) const {
  if (options_.live_path.empty()) return false;
  std::ostringstream buffer;
  write_live_snapshot(buffer, complete);
  const std::filesystem::path tmp =
      options_.live_path.string() + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return false;
    file << buffer.str();
  }
  std::error_code ec;
  std::filesystem::rename(tmp, options_.live_path, ec);
  return !ec;
}

}  // namespace hv::obs
