#include "obs/fdr.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "obs/prof.h"

namespace hv::obs::fdr {

const char* kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kNone: return "none";
    case EventKind::kStageEnter: return "stage-enter";
    case EventKind::kStageExit: return "stage-exit";
    case EventKind::kCaptureBegin: return "capture-begin";
    case EventKind::kCaptureEnd: return "capture-end";
    case EventKind::kParseBegin: return "parse-begin";
    case EventKind::kParseEnd: return "parse-end";
    case EventKind::kTokenizerState: return "tokenizer-state";
    case EventKind::kTreeMode: return "tree-mode";
    case EventKind::kRuleFire: return "rule-fire";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kStoreAdd: return "store-add";
    case EventKind::kStall: return "stall";
  }
  return "?";
}

#ifndef HV_OBS_DISABLED

namespace {

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void copy_truncated(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// The scope table.  Interning takes a mutex; reading a published slot
/// is lock-free (names are written before the count's release store and
/// never change afterwards), so the crash handler can resolve names.
struct ScopeTable {
  std::mutex mutex;
  char names[kMaxScopes][kMaxScopeName] = {{0}};
  std::atomic<std::uint32_t> count{1};  // slot 0 reserved for kNoScope
};

ScopeTable& scope_table() {
  static ScopeTable* const table = new ScopeTable();
  return *table;
}

/// The thread table: fixed array of pointers published with a release
/// store on the count so signal-context iteration sees fully-built
/// records.  Records intentionally leak (dead threads stay reportable).
struct ThreadTable {
  std::atomic<detail::ThreadRec*> slots[kMaxThreads] = {};
  std::atomic<std::uint32_t> count{0};
  std::atomic<std::uint64_t> drops{0};
};

ThreadTable& thread_table() {
  static ThreadTable* const table = new ThreadTable();
  return *table;
}

/// Marks the record dead when its thread exits.
struct ThreadExitGuard {
  detail::ThreadRec* rec = nullptr;
  ~ThreadExitGuard() {
    if (rec != nullptr) {
      rec->prof_stack = nullptr;
      rec->alive.store(false, std::memory_order_release);
    }
  }
};

thread_local detail::ThreadRec* tls_rec = nullptr;
thread_local ThreadExitGuard tls_exit_guard;

/// Registers the calling thread (normal context: allocates).  Returns
/// nullptr when the table is full.
detail::ThreadRec* register_thread() {
  ThreadTable& table = thread_table();
  auto* rec = new detail::ThreadRec();
  rec->prof_stack = static_cast<void*>(&prof::detail::tls_stack);
  const std::uint32_t index =
      table.count.fetch_add(1, std::memory_order_relaxed);
  if (index >= kMaxThreads) {
    table.count.fetch_sub(1, std::memory_order_relaxed);
    table.drops.fetch_add(1, std::memory_order_relaxed);
    delete rec;
    return nullptr;
  }
  std::snprintf(rec->name, sizeof(rec->name), "t%u", index);
  // Publish after the record is fully built.
  table.slots[index].store(rec, std::memory_order_release);
  tls_rec = rec;
  tls_exit_guard.rec = rec;
  return rec;
}

detail::ThreadRec* thread_rec() {
  detail::ThreadRec* rec = tls_rec;
  return rec != nullptr ? rec : register_thread();
}

Breadcrumb read_crumb(const detail::ThreadRec& rec) {
  Breadcrumb crumb;
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint32_t before =
        rec.crumb_seq.load(std::memory_order_acquire);
    if (before == 0) return crumb;  // never set
    if ((before & 1u) != 0) continue;
    crumb.domain = rec.crumb_domain;
    crumb.snapshot = rec.crumb_snapshot;
    crumb.year = rec.crumb_year;
    crumb.offset = rec.crumb_offset;
    crumb.active = rec.crumb_active.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (rec.crumb_seq.load(std::memory_order_relaxed) == before) {
      crumb.valid = true;
      return crumb;
    }
  }
  crumb.valid = true;  // torn but better than nothing
  return crumb;
}

}  // namespace

namespace detail {

std::size_t thread_count() noexcept {
  const std::uint32_t n =
      thread_table().count.load(std::memory_order_acquire);
  return n < kMaxThreads ? n : kMaxThreads;
}

const ThreadRec* thread_at(std::size_t index) noexcept {
  if (index >= kMaxThreads) return nullptr;
  return thread_table().slots[index].load(std::memory_order_acquire);
}

}  // namespace detail

ScopeId intern(std::string_view name) {
  ScopeTable& table = scope_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  const std::uint32_t count = table.count.load(std::memory_order_relaxed);
  for (std::uint32_t id = 1; id < count; ++id) {
    if (name == table.names[id]) return static_cast<ScopeId>(id);
  }
  if (count >= kMaxScopes) return kNoScope;
  copy_truncated(table.names[count], kMaxScopeName, name);
  // Release: a reader that sees the new count sees the finished name.
  table.count.store(count + 1, std::memory_order_release);
  return static_cast<ScopeId>(count);
}

const char* scope_name(ScopeId id) noexcept {
  ScopeTable& table = scope_table();
  if (id == kNoScope ||
      id >= table.count.load(std::memory_order_acquire)) {
    return "";
  }
  return table.names[id];
}

void emit(EventKind kind, ScopeId scope, std::uint64_t arg) noexcept {
  detail::ThreadRec* rec = thread_rec();
  if (rec == nullptr) return;
  const std::uint64_t cursor =
      rec->cursor.load(std::memory_order_relaxed);
  Event& slot = rec->ring[cursor % kRingCapacity];
  slot.t_ns = steady_ns();
  slot.arg = arg;
  slot.scope = scope;
  slot.kind = kind;
  // Publish: a cross-thread reader that sees the new cursor sees the
  // finished slot (the owning thread needs no ordering at all).
  rec->cursor.store(cursor + 1, std::memory_order_release);
}

void set_capture(std::string_view domain, std::string_view snapshot,
                 std::uint32_t year, std::uint64_t offset) noexcept {
  detail::ThreadRec* rec = thread_rec();
  if (rec == nullptr) return;
  // Seqlock write: odd while mid-update.
  rec->crumb_seq.fetch_add(1, std::memory_order_acq_rel);
  copy_truncated(rec->crumb_domain, kCrumbDomain, domain);
  copy_truncated(rec->crumb_snapshot, kCrumbSnapshot, snapshot);
  rec->crumb_year = year;
  rec->crumb_offset = offset;
  rec->crumb_active.store(true, std::memory_order_relaxed);
  rec->crumb_seq.fetch_add(1, std::memory_order_release);
}

void end_capture() noexcept {
  detail::ThreadRec* rec = tls_rec;
  if (rec == nullptr) return;
  rec->crumb_active.store(false, std::memory_order_relaxed);
}

void set_thread_name(std::string_view name) noexcept {
  detail::ThreadRec* rec = thread_rec();
  if (rec == nullptr || name.empty()) return;
  copy_truncated(rec->name, kThreadName, name);
}

std::uint64_t thread_drops() noexcept {
  return thread_table().drops.load(std::memory_order_relaxed);
}

std::vector<ThreadSnapshot> snapshot_all() {
  std::vector<ThreadSnapshot> out;
  const std::size_t n = detail::thread_count();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const detail::ThreadRec* rec = detail::thread_at(i);
    if (rec == nullptr) continue;
    ThreadSnapshot snap;
    snap.name = rec->name;
    snap.alive = rec->alive.load(std::memory_order_acquire);
    const std::uint64_t cursor =
        rec->cursor.load(std::memory_order_acquire);
    snap.events_total = cursor;
    snap.dropped = cursor > kRingCapacity ? cursor - kRingCapacity : 0;
    const std::uint64_t first =
        cursor > kRingCapacity ? cursor - kRingCapacity : 0;
    snap.recent.reserve(static_cast<std::size_t>(cursor - first));
    for (std::uint64_t c = first; c < cursor; ++c) {
      snap.recent.push_back(rec->ring[c % kRingCapacity]);
    }
    snap.crumb = read_crumb(*rec);
    if (snap.alive && rec->prof_stack != nullptr) {
      const auto* stack =
          static_cast<const prof::detail::ScopeStack*>(rec->prof_stack);
      std::uint32_t depth = stack->depth.load(std::memory_order_relaxed);
      if (depth > prof::kMaxDepth) depth = prof::kMaxDepth;
      for (std::uint32_t d = 0; d < depth; ++d) {
        snap.prof_stack.push_back(prof::scope_name(
            stack->frames[d].load(std::memory_order_relaxed)));
      }
      const prof::ScopeId leaf =
          stack->leaf.load(std::memory_order_relaxed);
      if (leaf != prof::kNoScope) {
        snap.prof_stack.push_back(prof::scope_name(leaf));
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void reset_for_test() {
  ThreadTable& table = thread_table();
  const std::size_t n = detail::thread_count();
  for (std::size_t i = 0; i < n; ++i) {
    table.slots[i].store(nullptr, std::memory_order_relaxed);
  }
  table.count.store(0, std::memory_order_release);
  table.drops.store(0, std::memory_order_relaxed);
  tls_rec = nullptr;
  tls_exit_guard.rec = nullptr;
}

#else  // HV_OBS_DISABLED

ScopeId intern(std::string_view) { return kNoScope; }
const char* scope_name(ScopeId) noexcept { return ""; }
void emit(EventKind, ScopeId, std::uint64_t) noexcept {}
void set_capture(std::string_view, std::string_view, std::uint32_t,
                 std::uint64_t) noexcept {}
void end_capture() noexcept {}
void set_thread_name(std::string_view) noexcept {}
std::uint64_t thread_drops() noexcept { return 0; }
std::vector<ThreadSnapshot> snapshot_all() { return {}; }
void reset_for_test() {}

#endif  // HV_OBS_DISABLED

}  // namespace hv::obs::fdr
