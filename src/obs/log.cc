#include "obs/log.h"

#include <ostream>

namespace hv::obs {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> log_level_from_name(std::string_view name) noexcept {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return std::nullopt;
}

std::string LogEntry::format() const {
  std::string out = "[";
  out.append(to_string(level));
  out += "] ";
  out.append(message);
  for (const LogField& field : fields) {
    out += " ";
    out += field.key;
    out += "=";
    out += field.value;
  }
  return out;
}

Log::Log(std::size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity) {
  ring_.reserve(capacity_);
}

void Log::set_stream(std::ostream* stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  stream_ = stream;
}

void Log::write(LogLevel level, std::string_view message,
                std::initializer_list<LogField> fields) {
#ifndef HV_OBS_DISABLED
  if (level == LogLevel::kOff || level < this->level()) return;
  LogEntry entry;
  entry.level = level;
  entry.message.assign(message);
  entry.fields.assign(fields.begin(), fields.end());
  std::lock_guard<std::mutex> lock(mutex_);
  entry.sequence = sequence_.fetch_add(1, std::memory_order_relaxed);
  if (stream_ != nullptr) *stream_ << entry.format() << "\n";
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[entry.sequence % capacity_] = std::move(entry);
  }
#else
  (void)level;
  (void)message;
  (void)fields;
#endif
}

std::vector<LogEntry> Log::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) return ring_;
  // Full ring: the oldest entry sits right after the most recent write.
  const std::uint64_t next = sequence_.load(std::memory_order_relaxed);
  std::vector<LogEntry> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    out.push_back(ring_[(next + i) % capacity_]);
  }
  return out;
}

void Log::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  sequence_.store(0, std::memory_order_relaxed);
}

Log& default_log() {
  static Log* const log = new Log();  // never destroyed
  return *log;
}

}  // namespace hv::obs
