#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace hv::obs::json {
namespace {

constexpr int kMaxDepth = 100;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    skip_whitespace();
    Value value;
    if (!parse_value(&value, 0)) return std::nullopt;
    skip_whitespace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out->type = Value::Type::kString;
        return parse_string(&out->string);
      case 't':
        out->type = Value::Type::kBool;
        out->boolean = true;
        return consume_literal("true");
      case 'f':
        out->type = Value::Type::kBool;
        out->boolean = false;
        return consume_literal("false");
      case 'n':
        out->type = Value::Type::kNull;
        return consume_literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value* out, int depth) {
    out->type = Value::Type::kObject;
    ++pos_;  // '{'
    skip_whitespace();
    if (consume('}')) return true;
    while (true) {
      skip_whitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(&key)) {
        return false;
      }
      skip_whitespace();
      if (!consume(':')) return false;
      skip_whitespace();
      Value member;
      if (!parse_value(&member, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(member));
      skip_whitespace();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array(Value* out, int depth) {
    out->type = Value::Type::kArray;
    ++pos_;  // '['
    skip_whitespace();
    if (consume(']')) return true;
    while (true) {
      skip_whitespace();
      Value element;
      if (!parse_value(&element, depth + 1)) return false;
      out->array.push_back(std::move(element));
      skip_whitespace();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // BMP-only UTF-8 encoding; our own writers never emit
          // surrogate pairs.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out->type = Value::Type::kNumber;
    out->number = value;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const noexcept {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const noexcept {
  const Value* member = find(key);
  return member != nullptr && member->type == Type::kNumber ? member->number
                                                            : fallback;
}

std::string Value::string_or(std::string_view key,
                             std::string_view fallback) const {
  const Value* member = find(key);
  return member != nullptr && member->type == Type::kString
             ? member->string
             : std::string(fallback);
}

bool Value::bool_or(std::string_view key, bool fallback) const noexcept {
  const Value* member = find(key);
  return member != nullptr && member->type == Type::kBool ? member->boolean
                                                          : fallback;
}

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace hv::obs::json
