#include "mitigation/mitigations.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "net/url.h"

namespace hv::mitigation {
namespace {

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  const auto it = std::search(
      haystack.begin(), haystack.end(), needle.begin(), needle.end(),
      [](char a, char b) {
        return std::tolower(static_cast<unsigned char>(a)) ==
               std::tolower(static_cast<unsigned char>(b));
      });
  return it != haystack.end();
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Rollout stages, rarest violations first, mirroring the paper's Figure 8
/// ordering ("In the beginning, this list contains violations that rarely
/// appear in our analysis, such as all math element-related violations or
/// dangling markup").
const std::array<std::vector<core::Violation>, 6>& stage_additions() {
  using enum core::Violation;
  static const std::array<std::vector<core::Violation>, 6> kStages = {{
      // Stage 0: near-extinct (<2% of domains).
      {kHF5_3, kDE1, kDE2, kDE3_3, kHF5_2, kDM2_2, kDM2_1},
      // Stage 1: rare (<8%).
      {kDE3_1, kDE3_2, kDE4},
      // Stage 2: uncommon (<15%).
      {kHF5_1, kDM2_3},
      // Stage 3: the mid-range formatting / meta problems.
      {kDM1, kHF3, kHF2, kHF1},
      // Stage 4: table fix-ups and slash-separated attributes.
      {kHF4, kFB1},
      // Stage 5: the two dominant attribute problems; = strict mode.
      {kDM3, kFB2},
  }};
  return kStages;
}

}  // namespace

bool ScriptInAttributeScan::any_affected() const noexcept {
  return std::any_of(hits.begin(), hits.end(),
                     [](const ScriptInAttributeHit& hit) {
                       return hit.on_nonced_script;
                     });
}

ScriptInAttributeScan scan_script_in_attributes(
    const html::Document& document) {
  ScriptInAttributeScan scan;
  document.for_each([&scan](const html::Node& node) {
    const html::Element* element = node.as_element();
    if (element == nullptr) return;
    for (const html::DomAttribute& attr : element->attributes()) {
      if (!icontains(attr.value, "<script")) continue;
      ScriptInAttributeHit hit;
      hit.element_tag = element->tag_name();
      hit.attribute_name = attr.name;
      hit.on_nonced_script =
          element->is_html("script") && element->has_attribute("nonce");
      scan.hits.push_back(std::move(hit));
    }
  });
  return scan;
}

UrlNewlineScan scan_url_newlines(const html::Document& document) {
  UrlNewlineScan scan;
  document.for_each([&scan](const html::Node& node) {
    const html::Element* element = node.as_element();
    if (element == nullptr) return;
    for (const html::DomAttribute& attr : element->attributes()) {
      if (!net::is_url_attribute(attr.name)) continue;
      if (net::url_has_newline(attr.value)) ++scan.urls_with_newline;
      if (net::url_has_newline_and_lt(attr.value)) {
        ++scan.urls_with_newline_and_lt;
      }
    }
  });
  return scan;
}

StrictParserPolicy parse_strict_parser_header(std::string_view header_value) {
  StrictParserPolicy policy;
  std::size_t start = 0;
  bool first = true;
  while (start <= header_value.size()) {
    std::size_t semi = header_value.find(';', start);
    if (semi == std::string_view::npos) semi = header_value.size();
    const std::string_view part =
        trim(header_value.substr(start, semi - start));
    if (first) {
      first = false;
      if (part == "strict") {
        policy.mode = StrictParserMode::kStrict;
      } else if (part == "unsafe") {
        policy.mode = StrictParserMode::kUnsafe;
      } else {
        policy.mode = StrictParserMode::kDefault;  // fail-safe
      }
    } else if (part.starts_with("monitor=")) {
      policy.monitor_url = std::string(trim(part.substr(8)));
    }
    start = semi + 1;
    if (semi == header_value.size()) break;
  }
  return policy;
}

int max_enforcement_stage() noexcept {
  return static_cast<int>(stage_additions().size()) - 1;
}

std::unordered_set<core::Violation> enforced_list_for_stage(int stage) {
  std::unordered_set<core::Violation> enforced;
  const auto& stages = stage_additions();
  const int limit = std::clamp(stage, 0, max_enforcement_stage());
  for (int i = 0; i <= limit; ++i) {
    enforced.insert(stages[static_cast<std::size_t>(i)].begin(),
                    stages[static_cast<std::size_t>(i)].end());
  }
  return enforced;
}

StrictParserDecision evaluate_strict_parser(const StrictParserPolicy& policy,
                                            const core::CheckResult& result,
                                            int stage) {
  StrictParserDecision decision;
  std::vector<core::Violation> present;
  for (std::size_t i = 0; i < core::kViolationCount; ++i) {
    const auto violation = static_cast<core::Violation>(i);
    if (result.has(violation)) present.push_back(violation);
  }
  // Every violation is reported to the monitor URL regardless of mode, so
  // developers can test the policy without breaking anything.
  if (policy.monitor_url.has_value()) decision.reported = present;

  switch (policy.mode) {
    case StrictParserMode::kUnsafe:
      return decision;  // never blocks
    case StrictParserMode::kStrict:
      decision.blocking = present;
      decision.blocked = !present.empty();
      return decision;
    case StrictParserMode::kDefault: {
      const auto enforced = enforced_list_for_stage(stage);
      for (const core::Violation violation : present) {
        if (enforced.count(violation) > 0) {
          decision.blocking.push_back(violation);
        }
      }
      decision.blocked = !decision.blocking.empty();
      return decision;
    }
  }
  return decision;
}

}  // namespace hv::mitigation
