// Existing and proposed mitigations for error-tolerance abuse.
//
// Section 4.5 evaluates two mitigations Chromium shipped in 2017:
//   1. nonce stealing: a <script> element carrying a CSP nonce is treated
//      as nonce-less when "<script" appears inside one of its attributes;
//   2. dangling markup: resource loads are blocked when the URL contains
//      both a raw newline and a '<'.
//
// Section 5.3.2 proposes a STRICT-PARSER response header with three modes
// (strict / unsafe / default) plus a growing "enforced" violation list and
// an optional monitor URL.  This module implements both the measurement
// scans and the header-policy simulation.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/checker.h"
#include "html/parser.h"

namespace hv::mitigation {

/// --- section 4.5, mitigation 1: "<script" inside attributes -------------

struct ScriptInAttributeHit {
  std::string element_tag;
  std::string attribute_name;
  bool on_nonced_script = false;  ///< the case the Chromium fix targets
};

struct ScriptInAttributeScan {
  std::vector<ScriptInAttributeHit> hits;
  bool any() const noexcept { return !hits.empty(); }
  /// Pages the mitigation would actually affect (paper: none in 8 years).
  bool any_affected() const noexcept;
};

ScriptInAttributeScan scan_script_in_attributes(
    const html::Document& document);

/// --- section 4.5, mitigation 2: newline (+ '<') in URLs ------------------

struct UrlNewlineScan {
  std::size_t urls_with_newline = 0;
  std::size_t urls_with_newline_and_lt = 0;  ///< would be blocked [58]
  bool any_newline() const noexcept { return urls_with_newline > 0; }
  bool any_blocked() const noexcept { return urls_with_newline_and_lt > 0; }
};

UrlNewlineScan scan_url_newlines(const html::Document& document);

/// --- section 5.3.2: the STRICT-PARSER header ------------------------------

enum class StrictParserMode {
  kStrict,   ///< block every deprecated violation
  kUnsafe,   ///< parse everything (explicit opt-out)
  kDefault,  ///< block only the currently-enforced list
};

struct StrictParserPolicy {
  StrictParserMode mode = StrictParserMode::kDefault;
  std::optional<std::string> monitor_url;  ///< violation reports target
};

/// Parses a STRICT-PARSER header value, e.g.
///   "strict"
///   "default; monitor=https://example.com/reports"
/// Unknown modes fall back to kDefault (fail-safe).
StrictParserPolicy parse_strict_parser_header(std::string_view header_value);

/// The roadmap's staged enforcement: violations enter the enforced list as
/// their in-the-wild usage drops (rarest first).  `stage` 0 enforces only
/// the near-extinct violations; the final stage equals strict mode.
std::unordered_set<core::Violation> enforced_list_for_stage(int stage);
int max_enforcement_stage() noexcept;

struct StrictParserDecision {
  bool blocked = false;  ///< page replaced by an error page
  std::vector<core::Violation> blocking;   ///< violations that blocked
  std::vector<core::Violation> reported;   ///< sent to the monitor URL
};

/// Applies the policy to a page's check result at a given rollout stage.
StrictParserDecision evaluate_strict_parser(
    const StrictParserPolicy& policy, const core::CheckResult& result,
    int stage);

}  // namespace hv::mitigation
