#include "fix/autofix.h"

#include <algorithm>

#include "html/parser.h"
#include "html/serializer.h"

namespace hv::fix {

using html::Document;
using html::Element;
using html::Node;

void relocate_head_only_elements(Document& document) {
  Element* head = document.head();
  if (head == nullptr) return;

  std::vector<Element*> to_move;
  bool base_seen = false;
  std::vector<Element*> surplus_bases;
  document.for_each([&](Node& node) {
    Element* element = node.as_element();
    if (element == nullptr || element->ns() != html::Namespace::kHtml) return;
    if (element->tag_name() == "base") {
      if (base_seen) {
        surplus_bases.push_back(element);
        return;
      }
      base_seen = true;
      to_move.push_back(element);  // ensure it sits first in the head
      return;
    }
    if (element->tag_name() == "meta" && element->has_attribute("http-equiv")) {
      // Move only when not already inside the head.
      for (const Node* ancestor = element->parent(); ancestor != nullptr;
           ancestor = ancestor->parent()) {
        if (ancestor == head) return;
      }
      to_move.push_back(element);
    }
  });

  for (Element* surplus : surplus_bases) {
    if (surplus->parent() != nullptr) {
      surplus->parent()->remove_child(surplus);
    }
  }
  // base must precede every URL-bearing element (DM2_3), so prepend moved
  // elements: base first, then the metas after it but before existing
  // children.
  Node* first_child =
      head->children().empty() ? nullptr : head->children().front();
  for (Element* element : to_move) {
    head->insert_before(element, first_child);
  }
  // Keep base strictly first among the moved block.
  for (Node* child : std::vector<Node*>(head->children())) {
    Element* element = child->as_element();
    if (element != nullptr && element->tag_name() == "base" &&
        head->children().front() != child) {
      head->insert_before(child, head->children().front());
      break;
    }
  }
}

AutoFixer::AutoFixer() = default;

std::string AutoFixer::fix(std::string_view html) const {
  html::ParseResult parsed = html::parse(html);
  relocate_head_only_elements(*parsed.document);
  return html::serialize(*parsed.document);
}

FixOutcome AutoFixer::fix_and_verify(std::string_view html) const {
  // One parse serves both the before-check and the repair: check over the
  // instrumented parse, then mutate the same DOM and serialize.  Only the
  // fixed output needs a fresh parse (the repair verdict is about what
  // the *serialized* bytes do), so this is two parses where the old
  // check/fix/re-check sequence paid three.
  FixOutcome outcome;
  html::ParseResult parsed = html::parse(html);
  const core::CheckResult before = checker_.check(parsed, html);
  relocate_head_only_elements(*parsed.document);
  outcome.fixed_html = html::serialize(*parsed.document);
  const core::CheckResult after = checker_.check(outcome.fixed_html);
  outcome.before.present = before.present;
  outcome.after.present = after.present;
  for (std::size_t i = 0; i < core::kViolationCount; ++i) {
    const auto violation = static_cast<core::Violation>(i);
    if (before.has(violation) && !after.has(violation)) {
      outcome.fixed.push_back(violation);
    } else if (after.has(violation)) {
      outcome.remaining.push_back(violation);
    }
  }
  outcome.semantics_preserving = before.fully_auto_fixable();
  outcome.fully_fixed = !after.violating();
  return outcome;
}

}  // namespace hv::fix
