// Automatic violation repair (paper section 4.4).
//
// The paper estimates that 46% of violating sites could be repaired by a
// simple automated process:
//   * FB1/FB2 — "serializing the entire document with the current HTML
//     parser and deserializing it again": syntax is fixed, rendering is
//     unchanged (except for mXSS corner cases);
//   * DM3 — duplicates after the first occurrence are dropped, which is
//     what the parser already does, so removal changes nothing;
//   * DM1/DM2 — meta[http-equiv]/base elements are relocated into the head
//     ("we have not seen a single example in our data that would break by
//     automatically moving the elements in the head section").
//
// HF and DE violations are mechanically normalizable too, but not
// semantics-preserving (the parser's repair may not match developer
// intent), so the section 4.4 policy — exposed as `semantics_preserving` —
// counts a page as auto-fixable only when ALL of its violations fall into
// the FB/DM classes.
#pragma once

#include <bitset>
#include <string>
#include <string_view>
#include <vector>

#include "core/checker.h"

namespace hv::fix {

/// Which violations a check found, as a bare bitset.  FixOutcome used to
/// embed two full CheckResults — findings vectors, details and all — just
/// to answer has()/violating() queries, and copied both on every
/// hand-off; the fix verdict only needs the presence bits.
struct ViolationSet {
  std::bitset<core::kViolationCount> present;

  bool has(core::Violation violation) const noexcept {
    return present.test(static_cast<std::size_t>(violation));
  }
  bool violating() const noexcept { return present.any(); }
  std::size_t distinct_violations() const noexcept { return present.count(); }
};

struct FixOutcome {
  std::string fixed_html;
  ViolationSet before;
  ViolationSet after;
  /// Violations present before and absent after.
  std::vector<core::Violation> fixed;
  /// Violations still present after the mechanical fix.
  std::vector<core::Violation> remaining;
  /// Section 4.4 policy: every original violation was in the auto-fixable
  /// (FB/DM) classes, so the fix is safe to apply blindly.
  bool semantics_preserving = false;
  bool fully_fixed = false;  ///< after.violating() == false
};

class AutoFixer {
 public:
  AutoFixer();

  /// Mechanical repair: parse, relocate meta/base into the head, drop
  /// surplus base elements, serialize.  Always returns syntactically valid
  /// markup; idempotent.
  std::string fix(std::string_view html) const;

  /// Repairs and re-checks, reporting what changed.
  FixOutcome fix_and_verify(std::string_view html) const;

  const core::Checker& checker() const noexcept { return checker_; }

 private:
  core::Checker checker_;
};

/// The mechanical transform itself: moves meta[http-equiv] and base
/// elements that ended up outside the head back into it and drops every
/// base after the first (DM1/DM2).  Exposed so hv::engine can repair a
/// document it has already parsed without paying a second parse.
void relocate_head_only_elements(html::Document& document);

}  // namespace hv::fix
