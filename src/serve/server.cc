#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "obs/obs.h"
#include "report/render.h"
#include "store/study_view.h"

namespace hv::serve {
namespace {

/// Handles into obs::default_registry(), resolved once per process.
/// Naming scheme: hv_serve_<name>{endpoint[,status]}.
struct ServeMetrics {
  obs::CounterFamily& requests;    ///< {endpoint, status}
  obs::HistogramFamily& latency;   ///< {endpoint}
  obs::Counter& bytes_in;          ///< request bytes off the socket
  obs::Counter& bytes_out;         ///< response bytes onto the socket
  obs::Gauge& active_connections;  ///< currently open connections

  static ServeMetrics& get() {
    obs::Registry& registry = obs::default_registry();
    static ServeMetrics* const metrics = new ServeMetrics{
        registry.counter_family("hv_serve_requests_total",
                                "HTTP requests served, by endpoint and "
                                "status code",
                                {"endpoint", "status"}),
        registry.histogram_family("hv_serve_request_seconds",
                                  "Request handling latency (parse to "
                                  "response written)",
                                  {"endpoint"}, obs::default_time_buckets()),
        registry.counter("hv_serve_bytes_in_total",
                         "Request bytes read from clients"),
        registry.counter("hv_serve_bytes_out_total",
                         "Response bytes written to clients"),
        registry.gauge("hv_serve_active_connections",
                       "Connections currently open")};
    return *metrics;
  }
};

/// Bounded-cardinality endpoint label for metrics: known paths keep their
/// name, everything else is "other" so a scanner can't mint label values.
std::string_view endpoint_label(std::string_view path) {
  if (path == "/check") return "/check";
  if (path == "/stats") return "/stats";
  if (path == "/metrics") return "/metrics";
  if (path == "/healthz") return "/healthz";
  if (path == "/query" || path.starts_with("/query/")) return "/query";
  return "other";
}

/// True when the (undecoded) query string contains flag=1 or flag=true.
bool query_flag(std::string_view query, std::string_view flag) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view param = query.substr(0, amp);
    if (param == flag) return true;
    const std::size_t eq = param.find('=');
    if (eq != std::string_view::npos && param.substr(0, eq) == flag) {
      const std::string_view value = param.substr(eq + 1);
      if (value == "1" || value == "true") return true;
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return false;
}

void append_violation_names(std::ostream& out,
                            const std::vector<core::Violation>& violations) {
  out << "[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << core::info(violations[i]).name << "\"";
  }
  out << "]";
}

/// Reads more bytes from `fd` into `buffer`; returns bytes read (0 on
/// orderly close, -1 on error/timeout).
ssize_t read_some(int fd, std::string* buffer) {
  char chunk[16 * 1024];
  const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  if (n > 0) buffer->append(chunk, static_cast<std::size_t>(n));
  return n;
}

/// Offset one past the blank line ending the header block, or npos.
std::size_t find_head_end(std::string_view buffer) {
  const std::size_t crlf = buffer.find("\r\n\r\n");
  const std::size_t lf = buffer.find("\n\n");
  if (crlf == std::string_view::npos) {
    return lf == std::string_view::npos ? std::string_view::npos : lf + 2;
  }
  if (lf != std::string_view::npos && lf + 2 < crlf + 4) return lf + 2;
  return crlf + 4;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

Server::Server(const engine::Engine& engine, ServerConfig config)
    : engine_(&engine), config_(std::move(config)) {
  if (config_.threads <= 0) config_.threads = 1;
}

Server::~Server() {
  request_stop();
  wait();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool Server::start(std::string* error) {
  const auto fail = [this, error](std::string_view what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
    errno = EINVAL;
    return fail("bad bind address '" + config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return fail("bind " + config_.bind_address + ":" +
                std::to_string(config_.port));
  }
  if (::listen(listen_fd_, 128) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));

  workers_.reserve(static_cast<std::size_t>(config_.threads));
  for (int i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
  return true;
}

void Server::request_stop() noexcept {
  // Async-signal-safe by construction: one atomic store plus shutdown(2),
  // which wakes every worker blocked in accept() on the shared fd.
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::wait() {
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void Server::worker_main(int index) {
  obs::prof::ThreadGuard prof_guard("srv" + std::to_string(index));
  while (!stopping()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener is gone; nothing left to accept
    }
    handle_connection(fd);
  }
}

void Server::handle_connection(int fd) {
  ServeMetrics& metrics = ServeMetrics::get();
  metrics.active_connections.add(1.0);

  timeval timeout{};
  timeout.tv_sec = config_.idle_timeout_seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  static const obs::fdr::ScopeId serve_scope = obs::fdr::intern("serve");
  std::string buffer;
  std::size_t served = 0;

  while (true) {
    // Assemble one request head (bytes may already be buffered from a
    // pipelined client).
    std::size_t head_end = find_head_end(buffer);
    bool peer_gone = false;
    while (head_end == std::string_view::npos &&
           buffer.size() <= config_.max_head_bytes) {
      // An idle keep-alive connection parks here; the receive timeout is
      // the drain tick that lets a stopping server close it.
      if (stopping() && buffer.empty()) {
        peer_gone = true;
        break;
      }
      const ssize_t n = read_some(fd, &buffer);
      if (n <= 0) {
        peer_gone = true;
        break;
      }
      metrics.bytes_in.inc(static_cast<std::uint64_t>(n));
      head_end = find_head_end(buffer);
    }
    if (peer_gone) break;
    if (head_end == std::string_view::npos) {
      // Head larger than the cap and still no blank line.
      const std::string response = net::build_http_response(
          431, "Request Header Fields Too Large",
          {{"Content-Type", "text/plain; charset=utf-8"},
           {"Connection", "close"}},
          "request head too large\n");
      if (send_all(fd, response)) {
        metrics.bytes_out.inc(response.size());
      }
      metrics.requests.with({"other", "431"}).inc();
      break;
    }

    const auto start = std::chrono::steady_clock::now();
    const auto request = net::parse_http_request(
        std::string_view(buffer).substr(0, head_end));
    if (!request.has_value()) {
      const std::string response = net::build_http_response(
          400, "Bad Request",
          {{"Content-Type", "text/plain; charset=utf-8"},
           {"Connection", "close"}},
          "malformed request\n");
      if (send_all(fd, response)) {
        metrics.bytes_out.inc(response.size());
      }
      metrics.requests.with({"other", "400"}).inc();
      break;
    }

    // Route on the decoded path: percent-encoded spellings of an endpoint
    // ("/query/domain/alph%61.example") must hit the same handler and the
    // same metric label as the literal one.  Invalid escapes never get
    // this far — parse_http_request already rejected them as 400s.
    const std::string_view endpoint = endpoint_label(request->decoded_path);

    // A transfer-encoded body (chunked or otherwise) has no Content-Length
    // to frame it.  Treating it as zero-length would leave the chunked
    // payload in the buffer to be parsed as the *next* request head — a
    // keep-alive desync serving confusing 400s — so refuse loudly and
    // drop the connection before touching the body bytes.
    if (request->header("Transfer-Encoding").has_value()) {
      const std::string response = net::build_http_response(
          501, "Not Implemented",
          {{"Content-Type", "text/plain; charset=utf-8"},
           {"Connection", "close"}},
          "transfer encodings are not supported; send Content-Length\n");
      if (send_all(fd, response)) {
        metrics.bytes_out.inc(response.size());
      }
      metrics.requests.with({endpoint, "501"}).inc();
      break;
    }

    const std::uint64_t sequence =
        request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    // The flight-recorder breadcrumb: the in-flight request takes the
    // slot the batch pipeline uses for the in-flight capture, so a crash
    // report names the exact request a worker died on.
    obs::fdr::set_capture(request->target, "serve", 0, sequence);
    obs::fdr::emit(obs::fdr::EventKind::kCaptureBegin, serve_scope,
                   sequence);

    // Body: strict Content-Length only (no chunked decoding — the check
    // payload is one blob and every in-tree client sends a length).
    bool close_after = request->wants_close();
    Response response;
    std::size_t body_length = 0;
    bool body_ok = true;
    const auto declared = request->content_length();
    if (request->header("Content-Length").has_value() &&
        !declared.has_value()) {
      response = {400, "Bad Request", "text/plain; charset=utf-8",
                  "malformed Content-Length\n"};
      body_ok = false;
      close_after = true;
    } else if (declared.value_or(0) > config_.max_body_bytes) {
      response = {413, "Content Too Large", "text/plain; charset=utf-8",
                  "body exceeds " + std::to_string(config_.max_body_bytes) +
                      " bytes\n"};
      body_ok = false;
      close_after = true;  // refusing to read the rest; can't resync
    } else {
      body_length = static_cast<std::size_t>(declared.value_or(0));
      while (buffer.size() < head_end + body_length) {
        const ssize_t n = read_some(fd, &buffer);
        if (n <= 0) {
          peer_gone = true;
          break;
        }
        metrics.bytes_in.inc(static_cast<std::uint64_t>(n));
      }
      if (peer_gone) {
        obs::fdr::emit(obs::fdr::EventKind::kCaptureEnd, serve_scope,
                       sequence);
        obs::fdr::end_capture();
        break;  // truncated body: nothing sane to answer
      }
    }

    if (body_ok) {
      const std::string_view body =
          std::string_view(buffer).substr(head_end, body_length);
      response = handle_request(*request, body);
    }

    ++served;
    if (served >= config_.max_requests_per_connection || stopping()) {
      close_after = true;
    }
    const std::string wire = net::build_http_response(
        response.status, response.reason,
        {{"Content-Type", response.content_type},
         {"Connection", close_after ? "close" : "keep-alive"}},
        response.body);
    const bool sent = send_all(fd, wire);
    if (sent) metrics.bytes_out.inc(wire.size());

    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    metrics.latency.with({endpoint}).observe(seconds);
    metrics.requests.with({endpoint, std::to_string(response.status)}).inc();
    obs::fdr::emit(obs::fdr::EventKind::kCaptureEnd, serve_scope, sequence);
    obs::fdr::end_capture();

    if (!sent || close_after) break;
    buffer.erase(0, head_end + body_length);
  }

  ::close(fd);
  metrics.active_connections.add(-1.0);
}

Server::Response Server::handle_request(const net::HttpRequest& request,
                                        std::string_view body) const {
  const std::string_view path = request.decoded_path;

  if (path == "/healthz") {
    if (request.method != "GET") {
      return {405, "Method Not Allowed", "text/plain; charset=utf-8",
              "method not allowed\n"};
    }
    return {200, "OK", "text/plain; charset=utf-8", "ok\n"};
  }

  if (path == "/metrics") {
    if (request.method != "GET") {
      return {405, "Method Not Allowed", "text/plain; charset=utf-8",
              "method not allowed\n"};
    }
#ifdef HV_OBS_DISABLED
    // Degrade, don't vanish: the scrape target stays alive so dashboards
    // show an explained flatline instead of a dead endpoint.
    return {200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            "# metrics disabled: built with HV_OBS_DISABLED\n"};
#else
    std::ostringstream out;
    obs::default_registry().write_prometheus(out);
    return {200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            out.str()};
#endif
  }

  if (path == "/check") {
    if (request.method != "POST") {
      return {405, "Method Not Allowed", "text/plain; charset=utf-8",
              "POST HTML bytes to /check\n"};
    }
    if (!request.header("Content-Length").has_value()) {
      return {411, "Length Required", "text/plain; charset=utf-8",
              "Content-Length required\n"};
    }
    engine::CheckRequest check;
    check.bytes = body;
    check.autofix = query_flag(request.query(), "fix");
    const engine::CheckReport report = engine_->check(check);

    std::ostringstream json;
    json << "{\n  \"utf8_valid\": "
         << (report.utf8_valid ? "true" : "false")
         << ",\n  \"parse_errors\": " << report.parse_errors
         << ",\n  \"distinct_violations\": " << report.distinct_violations()
         << ",\n  \"fully_auto_fixable\": "
         << (report.fully_auto_fixable ? "true" : "false")
         << ",\n  \"findings\": [";
    engine::write_findings_json(json, report.findings, "    ");
    json << (report.findings.empty() ? "]" : "\n  ]");
    if (report.fix.has_value()) {
      const engine::FixReport& fix = *report.fix;
      json << ",\n  \"fix\": {\n    \"fixed\": ";
      append_violation_names(json, fix.fixed);
      json << ",\n    \"remaining\": ";
      append_violation_names(json, fix.remaining);
      json << ",\n    \"semantics_preserving\": "
           << (fix.semantics_preserving ? "true" : "false")
           << ",\n    \"fully_fixed\": "
           << (fix.fully_fixed ? "true" : "false")
           << ",\n    \"fixed_html\": \""
           << engine::json_escape(fix.fixed_html) << "\"\n  }";
    }
    json << "\n}\n";
    return {200, "OK", "application/json", json.str()};
  }

  if (path == "/stats" || path == "/query/stats" || path == "/query/union" ||
      path == "/query/csv" || path.starts_with("/query/domain/")) {
    if (request.method != "GET") {
      return {405, "Method Not Allowed", "text/plain; charset=utf-8",
              "method not allowed\n"};
    }
    if (config_.results == nullptr) {
      return {503, "Service Unavailable", "text/plain; charset=utf-8",
              "no results loaded; start hv serve with --results "
              "results.hv\n"};
    }
    const store::StudyView& view = *config_.results;
    std::ostringstream out;
    if (path == "/stats" || path == "/query/stats") {
      report::render_study_overview(out, view);
      return {200, "OK", "text/plain; charset=utf-8", out.str()};
    }
    if (path == "/query/union") {
      report::render_union_table(out, view);
      return {200, "OK", "text/plain; charset=utf-8", out.str()};
    }
    if (path == "/query/csv") {
      view.write_csv(out);
      return {200, "OK", "text/csv", out.str()};
    }
    const std::string_view domain =
        path.substr(std::string_view("/query/domain/").size());
    const auto index = view.find_domain(domain);
    if (!index.has_value()) {
      return {404, "Not Found", "text/plain; charset=utf-8",
              "domain '" + std::string(domain) +
                  "' not in the result set\n"};
    }
    report::render_domain_history(out, view, *index);
    return {200, "OK", "text/plain; charset=utf-8", out.str()};
  }

  return {404, "Not Found", "text/plain; charset=utf-8", "not found\n"};
}

}  // namespace hv::serve
