// hv::serve — the `hv serve` online violation-checking service.
//
// A deliberately small HTTP/1.1 server (DESIGN.md section 16): one
// listening socket shared by a fixed pool of blocking worker threads,
// each accept()ing and owning one connection at a time.  No event loop,
// no request queue — the kernel's accept queue IS the queue, and the
// per-document work (an engine check) is CPU-bound enough that a worker
// per core saturates the machine.  Keep-alive is bounded per connection;
// bodies are bounded by Content-Length with a hard cap; shutdown is a
// SIGINT-safe drain (stop accepting, finish in-flight requests, close).
//
// Endpoints:
//   POST /check[?fix=1]   HTML bytes -> JSON findings + parse errors
//                         (+ section 4.4 autofix diff with ?fix=1)
//   GET  /stats           study overview from a --results results.hv
//   GET  /query/stats     same as /stats
//   GET  /query/union     Figure 8 union table
//   GET  /query/csv       full results CSV
//   GET  /query/domain/X  one domain's longitudinal history
//   GET  /metrics         Prometheus text from hv::obs
//   GET  /healthz         liveness probe
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/http.h"

namespace hv::store {
class StudyView;
}  // namespace hv::store

namespace hv::serve {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 binds an ephemeral port; read it back via port()
  int threads = 4;
  std::size_t max_body_bytes = 8u * 1024 * 1024;  ///< 413 above this
  std::size_t max_head_bytes = 64u * 1024;        ///< 431 above this
  std::size_t max_requests_per_connection = 100;  ///< keep-alive bound
  int idle_timeout_seconds = 5;  ///< per-read timeout; also the drain tick
  /// Sealed results backing /stats and /query/... (optional; those
  /// endpoints answer 503 without it).  Lock-free for concurrent readers,
  /// so every worker queries it directly.
  const store::StudyView* results = nullptr;
};

class Server {
 public:
  Server(const engine::Engine& engine, ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the worker pool.  False (with *error set)
  /// when the address can't be bound.
  bool start(std::string* error);

  /// The bound port (after start); the ephemeral-port answer.
  int port() const noexcept { return port_; }

  /// Begins the graceful drain: stop accepting, let in-flight requests
  /// finish, close idle connections.  Async-signal-safe (an atomic store
  /// plus shutdown(2)), so a SIGINT handler may call it directly.
  void request_stop() noexcept;

  bool stopping() const noexcept {
    return stopping_.load(std::memory_order_relaxed);
  }

  /// Joins the workers (returns once the drain completes).
  void wait();

  /// Requests served across all workers (drained connections included).
  std::uint64_t requests_served() const noexcept {
    return request_seq_.load(std::memory_order_relaxed);
  }

 private:
  struct Response {
    int status = 200;
    std::string reason = "OK";
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  void worker_main(int index);
  void handle_connection(int fd);
  Response handle_request(const net::HttpRequest& request,
                          std::string_view body) const;

  const engine::Engine* engine_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> request_seq_{0};
  std::vector<std::thread> workers_;
};

}  // namespace hv::serve
