#include "corpus/calibration.h"

#include <algorithm>
#include <cmath>

#include "corpus/rng.h"
#include "report/paper_data.h"

namespace hv::corpus {
namespace {

/// Monte-Carlo estimate of the 8-year union for one series given the
/// common-part weight m = sqrt(w^2 + c^2): draw the common factor
/// G ~ N(0, m^2); conditional yearly probability is
/// Phi((theta_y - G) / e).
double estimate_union(const std::array<double, kYears>& thresholds, double m,
                      std::uint64_t seed, int samples) {
  const double e = std::sqrt(std::max(1e-9, 1.0 - m * m));
  SplitMix64 rng(seed);
  double total = 0.0;
  for (int s = 0; s < samples; ++s) {
    const double g = m * rng.normal();
    double none = 1.0;
    for (int y = 0; y < kYears; ++y) {
      none *= 1.0 -
              normal_cdf((thresholds[static_cast<std::size_t>(y)] - g) / e);
    }
    total += 1.0 - none;
  }
  return total / samples;
}

/// Finds m in [lower, 0.995] so the union matches; the union is monotone
/// decreasing in m (more persistence => fewer distinct violators).
double solve_common_weight(const std::array<double, kYears>& thresholds,
                           double union_target, double lower,
                           std::uint64_t seed, int samples) {
  double lo = lower;          // most churn we are allowed (w fixed)
  double hi = 0.995;          // almost perfectly persistent
  const double u_lo = estimate_union(thresholds, lo, seed, samples);
  if (union_target >= u_lo) return lo;  // cannot exceed the churn limit
  const double u_hi = estimate_union(thresholds, hi, seed, samples);
  if (union_target <= u_hi) return hi;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double u = estimate_union(thresholds, mid, seed, samples);
    if (u > union_target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Monte-Carlo estimate of the year-0 any-violation rate for a candidate
/// domain weight w, with each violation's m solved for that w.
double estimate_any_rate(
    const std::array<SeriesTarget, core::kViolationCount>& targets,
    const std::array<std::array<double, kYears>, core::kViolationCount>&
        thresholds,
    double w, std::uint64_t seed, int samples) {
  // Solve m_v per violation for this w.
  std::array<double, core::kViolationCount> m{};
  for (std::size_t v = 0; v < core::kViolationCount; ++v) {
    if (targets[v].union_fraction > 0.0) {
      m[v] = solve_common_weight(thresholds[v], targets[v].union_fraction, w,
                                 mix(seed, v * 977 + 13), samples);
    } else {
      m[v] = std::min(0.9, std::max(w, 0.75));
    }
  }
  SplitMix64 rng(mix(seed, 0xABCDEF));
  int any = 0;
  for (int s = 0; s < samples; ++s) {
    const double z_d = rng.normal();
    bool violated = false;
    for (std::size_t v = 0; v < core::kViolationCount; ++v) {
      const double c = std::sqrt(std::max(0.0, m[v] * m[v] - w * w));
      const double e = std::sqrt(std::max(1e-9, 1.0 - m[v] * m[v]));
      const double z = w * z_d + c * rng.normal() + e * rng.normal();
      if (z < thresholds[v][0]) {
        violated = true;
        break;
      }
    }
    if (violated) ++any;
  }
  return static_cast<double>(any) / samples;
}

}  // namespace

std::array<SeriesTarget, core::kViolationCount> paper_targets() {
  std::array<SeriesTarget, core::kViolationCount> targets{};
  for (const report::ViolationSeries& series :
       report::paper_violation_series()) {
    SeriesTarget& target =
        targets[static_cast<std::size_t>(series.violation)];
    for (int y = 0; y < kYears; ++y) {
      target.yearly[static_cast<std::size_t>(y)] =
          series.yearly_percent[static_cast<std::size_t>(y)] / 100.0;
    }
    target.union_fraction = series.union_percent / 100.0;
  }
  return targets;
}

Calibration Calibration::solve(
    const std::array<SeriesTarget, core::kViolationCount>& targets,
    double any_rate_2015, std::uint64_t seed, int monte_carlo_samples) {
  Calibration calibration;

  std::array<std::array<double, kYears>, core::kViolationCount> thresholds{};
  for (std::size_t v = 0; v < core::kViolationCount; ++v) {
    for (int y = 0; y < kYears; ++y) {
      thresholds[v][static_cast<std::size_t>(y)] = inverse_normal_cdf(
          std::clamp(targets[v].yearly[static_cast<std::size_t>(y)], 1e-7,
                     0.999999));
    }
  }

  // Outer bisection on the domain weight w: a larger w concentrates
  // violations on fewer (sloppier) domains, lowering the any-rate.
  double lo = 0.05;
  double hi = 0.85;
  for (int iter = 0; iter < 12; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double rate = estimate_any_rate(targets, thresholds, mid,
                                          mix(seed, 31), monte_carlo_samples);
    if (rate > any_rate_2015) {
      lo = mid;  // too many violators: concentrate more
    } else {
      hi = mid;
    }
  }
  const double w = 0.5 * (lo + hi);
  calibration.domain_weight = w;

  for (std::size_t v = 0; v < core::kViolationCount; ++v) {
    CalibratedSeries& series = calibration.violations[v];
    series.thresholds = thresholds[v];
    series.domain_weight = w;
    double m = 0.0;
    if (targets[v].union_fraction > 0.0) {
      m = solve_common_weight(thresholds[v], targets[v].union_fraction, w,
                              mix(seed, v * 977 + 13), monte_carlo_samples);
    } else {
      m = std::min(0.9, std::max(w, 0.75));
    }
    series.series_weight = std::sqrt(std::max(0.0, m * m - w * w));
    series.noise_weight = std::sqrt(std::max(1e-9, 1.0 - m * m));
  }
  return calibration;
}

CalibratedSeries Calibration::solve_single(const SeriesTarget& target,
                                           double domain_weight,
                                           std::uint64_t seed,
                                           int monte_carlo_samples) {
  CalibratedSeries series;
  series.domain_weight = domain_weight;
  for (int y = 0; y < kYears; ++y) {
    series.thresholds[static_cast<std::size_t>(y)] = inverse_normal_cdf(
        std::clamp(target.yearly[static_cast<std::size_t>(y)], 1e-7,
                   0.999999));
  }
  double m = std::min(0.9, std::max(domain_weight, 0.75));
  if (target.union_fraction > 0.0) {
    m = solve_common_weight(series.thresholds, target.union_fraction,
                            domain_weight, seed, monte_carlo_samples);
  }
  series.series_weight =
      std::sqrt(std::max(0.0, m * m - domain_weight * domain_weight));
  series.noise_weight = std::sqrt(std::max(1e-9, 1.0 - m * m));
  return series;
}

}  // namespace hv::corpus
