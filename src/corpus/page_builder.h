// Synthetic page rendering with organic violation injection.
//
// Each generated page is a realistic document (head metadata, nav, main
// content, forms, tables, footer).  When a violation is scheduled for a
// page, the corresponding injector produces the same *root-cause mistake*
// the paper's section 4.4 attributes to it — a forgotten quote, a glued
// attribute, a copy-pasted form, a misplaced meta — NOT a synthetic
// marker.  The checker must rediscover these through the real parser.
//
// Injector hygiene: every injector triggers exactly its own violation and
// no other (verified by tests/corpus_test.cc); DE1/DE2 swallow trailing
// content, so they render last and never share a page.
#pragma once

#include <bitset>
#include <cstdint>
#include <string>

#include "core/violation.h"

namespace hv::corpus {

struct PageSpec {
  std::string domain;        ///< eTLD+1 the page belongs to
  std::string path = "/";    ///< URL path
  int year = 2015;           ///< snapshot year (content flavor changes)
  std::uint64_t seed = 0;    ///< deterministic content stream
  std::bitset<core::kViolationCount> violations;  ///< injections for the page
  bool quirk_newline_in_url = false;  ///< benign \n inside a URL (sec. 4.5)
  bool quirk_uses_math = false;       ///< valid MathML markup (sec. 4.2)
  bool quirk_uses_svg = false;        ///< valid inline SVG
};

/// Renders the page.  With an empty violation set and no quirks the output
/// parses with zero errors and zero observations.
std::string render_page(const PageSpec& spec);

/// Renders a non-HTML payload (JSON API response) used to model domains
/// whose Common Crawl records are not analyzable HTML (Table 2's
/// found-but-not-succeeded gap).
std::string render_non_html_payload(const PageSpec& spec);

/// Renders a page with Latin-1 (non-UTF-8) bytes to exercise the paper's
/// encoding filter.
std::string render_non_utf8_page(const PageSpec& spec);

/// Renders a *dynamic HTML fragment* — the AJAX partials / client-side
/// template output the paper's section 5.1 pre-study collected.  Only the
/// fragment-capable violations are injected (document-structure violations
/// such as HF1-HF3 or DM2 cannot occur in a fragment); others on
/// `spec.violations` are silently skipped.
std::string render_fragment(const PageSpec& spec);

/// True when `violation` can occur inside a dynamically inserted fragment.
bool violation_possible_in_fragment(core::Violation violation) noexcept;

}  // namespace hv::corpus
