// The synthetic-web generator: decides, per (domain, year), which
// violations and quirks a site exhibits (via the calibrated copula of
// calibration.h) and renders the concrete pages (page_builder.h).
//
// The generator also models the dataset mechanics of Table 2: not every
// study domain exists in every crawl (84.6%..90.6% per year), a small
// share of found domains has no analyzable HTML (97.7%..99.3% success),
// page counts per domain vary by year (avg 78-90% of the cap), and ~1% of
// pages are not UTF-8 (filtered downstream, like the paper's framework).
//
// Ground truth (which violations were injected) is exposed so tests can
// measure checker precision/recall — something the paper could only
// estimate by manual review (section 3.3).
#pragma once

#include <bitset>
#include <cstdint>
#include <string>
#include <vector>

#include "core/violation.h"
#include "corpus/calibration.h"
#include "corpus/page_builder.h"

namespace hv::corpus {

struct CorpusConfig {
  std::size_t domain_count = 2000;
  int max_pages_per_domain = 10;
  std::uint64_t seed = 42;
  int calibration_samples = 3000;
  /// Emit benign quirks (newline URLs, math/svg usage) for section 4.5/4.2.
  bool inject_quirks = true;
  /// Scales every violation's target rate.  1.0 models the paper's popular
  /// domains; the section 5.2 generalization cohort ("less popular
  /// websites ... have fewer violations on average") uses < 1.0.
  double violation_rate_scale = 1.0;
};

struct PageRecord {
  std::string url;
  std::string content_type;  ///< e.g. "text/html; charset=utf-8"
  std::string body;
};

struct DomainSnapshot {
  std::string domain;
  int year_index = 0;
  bool in_crawl = false;     ///< has records in this snapshot (Table 2 col 2)
  bool analyzable = false;   ///< has >=1 UTF-8 HTML page (Table 2 col 3)
  std::bitset<core::kViolationCount> ground_truth;  ///< injected this year
  bool quirk_newline_in_url = false;
  bool quirk_uses_math = false;
  std::vector<PageRecord> pages;
};

class Generator {
 public:
  Generator(CorpusConfig config, std::vector<std::string> domains);

  const std::vector<std::string>& domains() const noexcept {
    return domains_;
  }
  const CorpusConfig& config() const noexcept { return config_; }
  const Calibration& calibration() const noexcept { return calibration_; }

  /// Violations the copula schedules for (domain, year) — the ground truth
  /// the checker is later measured against.
  std::bitset<core::kViolationCount> ground_truth(std::size_t domain_index,
                                                  int year_index) const;

  /// Full snapshot of one domain in one year, pages rendered.
  DomainSnapshot domain_snapshot(std::size_t domain_index,
                                 int year_index) const;

 private:
  double latent_domain(std::size_t domain_index) const;
  double latent_series(std::size_t domain_index, std::size_t series) const;
  double latent_year(std::size_t domain_index, std::size_t series,
                     int year_index) const;

  CorpusConfig config_;
  std::vector<std::string> domains_;
  Calibration calibration_;
  CalibratedSeries newline_url_series_;
  CalibratedSeries math_series_;
  CalibratedSeries svg_series_;
  CalibratedSeries in_crawl_series_;
};

}  // namespace hv::corpus
