// Deterministic randomness for the synthetic corpus.
//
// Everything the corpus does must be reproducible bit-for-bit from the
// seed (the paper's methodology stresses reproducibility), so all draws go
// through SplitMix64 streams derived from stable string hashes — never
// std::rand or hardware entropy.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

namespace hv::corpus {

/// SplitMix64: tiny, fast, deterministic PRNG with good statistical
/// quality for simulation purposes.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Standard normal (Box-Muller; one value per call).
  double normal() noexcept {
    const double u1 = uniform() + 1e-15;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  bool chance(double p) noexcept { return uniform() < p; }

 private:
  std::uint64_t state_;
};

/// FNV-1a, for deriving per-(domain, violation, year, ...) seed streams
/// from stable names.
constexpr std::uint64_t fnv1a(std::string_view text,
                              std::uint64_t seed = 0xCBF29CE484222325ull) {
  std::uint64_t hash = seed;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

constexpr std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  return z ^ (z >> 31);
}

/// Standard normal CDF.
inline double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x * 0.7071067811865475244);
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 — far below the corpus's Monte-Carlo noise).
double inverse_normal_cdf(double p) noexcept;

}  // namespace hv::corpus
