#include "corpus/generator.h"

#include <algorithm>
#include <bit>
#include <map>
#include <mutex>
#include <tuple>

#include "corpus/rng.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "report/paper_data.h"

namespace hv::corpus {
namespace {

using core::Violation;

/// Counts rendered pages (and their bytes) per snapshot label; handles
/// are resolved once per process.
void note_pages_generated(int year_index,
                          const std::vector<PageRecord>& pages) {
  struct Handles {
    obs::Counter* pages[kYears];
    obs::Counter* bytes[kYears];
  };
  static Handles* const handles = [] {
    auto* h = new Handles;
    obs::CounterFamily& page_family = obs::default_registry().counter_family(
        "hv_corpus_pages_generated_total",
        "Synthetic pages rendered per snapshot", {"snapshot"});
    obs::CounterFamily& byte_family = obs::default_registry().counter_family(
        "hv_corpus_page_bytes_generated_total",
        "Synthetic page bytes rendered per snapshot", {"snapshot"});
    for (int y = 0; y < kYears; ++y) {
      const std::string_view label =
          report::kSnapshotLabels[static_cast<std::size_t>(y)];
      h->pages[y] = &page_family.with({label});
      h->bytes[y] = &byte_family.with({label});
    }
    return h;
  }();
  std::size_t bytes = 0;
  for (const PageRecord& page : pages) bytes += page.body.size();
  handles->pages[year_index]->inc(pages.size());
  handles->bytes[year_index]->inc(bytes);
}

/// Table 2 derived fractions: domains present per crawl / study population.
constexpr std::array<double, kYears> kInCrawlRate = {
    0.8456, 0.8491, 0.8954, 0.9032, 0.9251, 0.9200, 0.9168, 0.9064};

/// Table 2: successfully analyzed / present.
constexpr std::array<double, kYears> kSuccessRate = {
    0.977, 0.979, 0.988, 0.990, 0.991, 0.992, 0.993, 0.993};

/// Table 2: average pages per domain / the 100-page cap.
constexpr std::array<double, kYears> kPageFill = {
    0.788, 0.779, 0.873, 0.883, 0.901, 0.897, 0.898, 0.897};

/// Section 4.5: domains with a newline inside some URL (11.2% -> 11.0%).
constexpr std::array<double, kYears> kNewlineUrlRate = {
    0.112, 0.112, 0.1115, 0.111, 0.111, 0.1105, 0.110, 0.110};

/// Section 4.2: math-element usage grows 42 -> 224 domains (0.2% -> 1.0%).
constexpr std::array<double, kYears> kMathUsageRate = {
    0.0020, 0.0025, 0.0035, 0.0045, 0.0055, 0.0070, 0.0085, 0.0100};

/// Inline SVG adoption (background realism; exercises the foreign-content
/// path on clean pages).
constexpr std::array<double, kYears> kSvgUsageRate = {
    0.12, 0.14, 0.17, 0.20, 0.23, 0.26, 0.29, 0.32};

SeriesTarget make_target(const std::array<double, kYears>& yearly,
                         double union_fraction = -1.0) {
  SeriesTarget target;
  target.yearly = yearly;
  target.union_fraction = union_fraction;
  return target;
}

/// Calibration::solve is a pure function of its inputs and costs seconds
/// of Monte-Carlo bisection (the profiler's `corpus_calibrate` scope made
/// that cost visible); processes that construct many generators — the
/// test suite above all — hit this cache instead of re-solving.
const Calibration& solved_calibration(
    const std::array<SeriesTarget, core::kViolationCount>& targets,
    double any_target, std::uint64_t seed, int samples) {
  // The targets array is fully determined by violation_rate_scale, which
  // also uniquely determines any_target; hashing the targets anyway keeps
  // the cache correct if that coupling ever loosens.
  std::uint64_t targets_hash = 1469598103934665603ull;
  const auto fold = [&targets_hash](double value) {
    targets_hash ^= std::bit_cast<std::uint64_t>(value);
    targets_hash *= 1099511628211ull;
  };
  for (const SeriesTarget& target : targets) {
    for (const double rate : target.yearly) fold(rate);
    fold(target.union_fraction);
  }
  fold(any_target);
  using Key = std::tuple<std::uint64_t, std::uint64_t, int>;
  static std::mutex mutex;
  static std::map<Key, Calibration>* const cache =
      new std::map<Key, Calibration>;
  const Key key{targets_hash, seed, samples};
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  return cache
      ->emplace(key, Calibration::solve(targets, any_target, seed, samples))
      .first->second;
}

}  // namespace

Generator::Generator(CorpusConfig config, std::vector<std::string> domains)
    : config_(config), domains_(std::move(domains)) {
  if (domains_.size() > config_.domain_count) {
    domains_.resize(config_.domain_count);
  }
  std::array<SeriesTarget, core::kViolationCount> targets = paper_targets();
  double any_target = 0.7431;
  if (config_.violation_rate_scale != 1.0) {
    const double scale = std::clamp(config_.violation_rate_scale, 0.05, 2.0);
    for (SeriesTarget& target : targets) {
      for (double& rate : target.yearly) rate = std::min(0.95, rate * scale);
      if (target.union_fraction > 0.0) {
        target.union_fraction = std::min(0.97, target.union_fraction * scale);
      }
    }
    any_target = std::min(0.95, any_target * std::sqrt(scale));
  }
  HV_PROF_SCOPE("corpus_calibrate");
  calibration_ =
      solved_calibration(targets, any_target, mix(config_.seed, 0xCAFE),
                         config_.calibration_samples);
  const double w = calibration_.domain_weight;
  newline_url_series_ = Calibration::solve_single(
      make_target(kNewlineUrlRate), w * 0.5, mix(config_.seed, 1));
  math_series_ = Calibration::solve_single(make_target(kMathUsageRate),
                                           w * 0.25, mix(config_.seed, 2));
  svg_series_ = Calibration::solve_single(make_target(kSvgUsageRate),
                                          w * 0.25, mix(config_.seed, 3));
  // Crawl presence is highly persistent: a site on Common Crawl one year
  // is almost always there the next (Table 2's smooth counts).
  in_crawl_series_ = Calibration::solve_single(
      make_target(kInCrawlRate, /*union_fraction=*/0.9653),  // 24050/24915
      0.30, mix(config_.seed, 4));
}

double Generator::latent_domain(std::size_t domain_index) const {
  SplitMix64 rng(mix(config_.seed, fnv1a(domains_[domain_index]) ^ 0x51ull));
  return rng.normal();
}

double Generator::latent_series(std::size_t domain_index,
                                std::size_t series) const {
  SplitMix64 rng(mix(mix(config_.seed, fnv1a(domains_[domain_index])),
                     0x1000 + series));
  return rng.normal();
}

double Generator::latent_year(std::size_t domain_index, std::size_t series,
                              int year_index) const {
  SplitMix64 rng(
      mix(mix(config_.seed, fnv1a(domains_[domain_index])),
          0x9000 + series * 64 + static_cast<std::size_t>(year_index)));
  return rng.normal();
}

std::bitset<core::kViolationCount> Generator::ground_truth(
    std::size_t domain_index, int year_index) const {
  std::bitset<core::kViolationCount> bits;
  const double z_d = latent_domain(domain_index);
  for (std::size_t v = 0; v < core::kViolationCount; ++v) {
    const CalibratedSeries& series = calibration_.violations[v];
    // FB1 shares FB2's persistence latent: in the paper's data the
    // slash-separated-attribute sites are nearly a subset of the
    // glued-attribute sites (Figure 10's FB group tracks FB2 alone).
    // Marginals stay exact — only the cross-correlation rises.
    std::size_t latent_index = v;
    if (v == static_cast<std::size_t>(core::Violation::kFB1)) {
      latent_index = static_cast<std::size_t>(core::Violation::kFB2);
    }
    const double n = latent_series(domain_index, latent_index);
    const double eps = latent_year(domain_index, v, year_index);
    if (series.active(z_d, n, eps, year_index)) bits.set(v);
  }
  return bits;
}

DomainSnapshot Generator::domain_snapshot(std::size_t domain_index,
                                          int year_index) const {
  DomainSnapshot snapshot;
  snapshot.domain = domains_[domain_index];
  snapshot.year_index = year_index;

  const double z_d = latent_domain(domain_index);
  constexpr std::size_t kCrawlSeries = 100;
  constexpr std::size_t kNewlineSeries = 101;
  constexpr std::size_t kMathSeries = 102;
  constexpr std::size_t kSvgSeries = 103;

  snapshot.in_crawl = in_crawl_series_.active(
      z_d, latent_series(domain_index, kCrawlSeries),
      latent_year(domain_index, kCrawlSeries, year_index), year_index);
  if (!snapshot.in_crawl) return snapshot;

  SplitMix64 rng(mix(mix(config_.seed, fnv1a(snapshot.domain)),
                     0xF00D + static_cast<std::size_t>(year_index)));

  // A small share of found domains serves no analyzable HTML (APIs, ad
  // servers like doubleclick.net in the paper).
  const double success_rate =
      kSuccessRate[static_cast<std::size_t>(year_index)];
  // Persistent across years: an API domain stays an API domain, and as
  // the per-year success rate rises, some former failures become
  // analyzable (the same stable uniform against a moving threshold).
  SplitMix64 kind_rng(mix(config_.seed, fnv1a(snapshot.domain) ^ 0xA11));
  const bool api_domain = kind_rng.uniform() > success_rate;

  const int cap = config_.max_pages_per_domain;
  const double fill = kPageFill[static_cast<std::size_t>(year_index)];
  int page_count = std::max(
      1, static_cast<int>(
             std::lround(cap * fill + (rng.uniform() - 0.5) * 0.3 * cap)));
  page_count = std::min(page_count, cap);

  if (api_domain) {
    snapshot.analyzable = false;
    PageSpec spec;
    spec.domain = snapshot.domain;
    spec.seed = mix(config_.seed, fnv1a(snapshot.domain));
    for (int i = 0; i < std::min(page_count, 3); ++i) {
      spec.path = "/api/v1/resource/" + std::to_string(i);
      snapshot.pages.push_back(
          {spec.path, "application/json", render_non_html_payload(spec)});
    }
    note_pages_generated(year_index, snapshot.pages);
    return snapshot;
  }
  snapshot.analyzable = true;
  snapshot.ground_truth = ground_truth(domain_index, year_index);

  if (config_.inject_quirks) {
    snapshot.quirk_newline_in_url = newline_url_series_.active(
        z_d, latent_series(domain_index, kNewlineSeries),
        latent_year(domain_index, kNewlineSeries, year_index), year_index);
    snapshot.quirk_uses_math = math_series_.active(
        z_d, latent_series(domain_index, kMathSeries),
        latent_year(domain_index, kMathSeries, year_index), year_index);
  }
  const bool uses_svg =
      config_.inject_quirks &&
      svg_series_.active(z_d, latent_series(domain_index, kSvgSeries),
                         latent_year(domain_index, kSvgSeries, year_index),
                         year_index);

  // Assign each active violation a primary page (guaranteed) plus extra
  // pages with 25% probability each.  DE1 and DE2 swallow page tails, so
  // they get distinct primaries and no extras.
  const auto pages = static_cast<std::size_t>(page_count);
  std::vector<std::bitset<core::kViolationCount>> page_violations(pages);
  std::size_t de1_primary = pages;  // sentinel
  for (std::size_t v = 0; v < core::kViolationCount; ++v) {
    if (!snapshot.ground_truth.test(v)) continue;
    SplitMix64 assign_rng(
        mix(mix(config_.seed, fnv1a(snapshot.domain)),
            0xBEEF00 + v * 97 + static_cast<std::size_t>(year_index)));
    std::size_t primary = assign_rng.below(pages);
    const auto violation = static_cast<Violation>(v);
    if (violation == Violation::kDE1) {
      de1_primary = primary;
    } else if (violation == Violation::kDE2 && primary == de1_primary) {
      primary = (primary + 1) % pages;
      if (primary == de1_primary) {  // single-page domain: DE1 wins
        continue;
      }
    }
    page_violations[primary].set(v);
    if (violation != Violation::kDE1 && violation != Violation::kDE2) {
      for (std::size_t p = 0; p < pages; ++p) {
        if (p != primary && assign_rng.chance(0.25)) {
          page_violations[p].set(v);
        }
      }
    }
  }
  // An unterminated textarea would hide any same-page select leak.
  if (de1_primary < pages) {
    page_violations[de1_primary].reset(
        static_cast<std::size_t>(Violation::kDE2));
  }

  for (std::size_t p = 0; p < pages; ++p) {
    PageSpec spec;
    spec.domain = snapshot.domain;
    spec.year = report::kYears[static_cast<std::size_t>(year_index)];
    spec.seed = mix(config_.seed,
                    mix(fnv1a(snapshot.domain),
                        0xABC000 + p * 131 +
                            static_cast<std::size_t>(year_index)));
    SplitMix64 page_rng(mix(spec.seed, 0x77));
    spec.path = p == 0 ? std::string("/")
                       : "/pages/" + std::to_string(spec.year) + "/entry-" +
                             std::to_string(p);
    spec.violations = page_violations[p];
    spec.quirk_newline_in_url =
        snapshot.quirk_newline_in_url && (p == 0 || page_rng.chance(0.3));
    spec.quirk_uses_math =
        snapshot.quirk_uses_math && (p == 0 || page_rng.chance(0.3));
    spec.quirk_uses_svg = uses_svg && page_rng.chance(0.5);

    // ~1% of pages are not UTF-8 and get filtered downstream; keep
    // violation-bearing pages UTF-8 so domain-level ground truth holds.
    if (page_violations[p].none() && page_rng.chance(0.01)) {
      snapshot.pages.push_back({spec.path,
                                "text/html; charset=iso-8859-1",
                                render_non_utf8_page(spec)});
      continue;
    }
    snapshot.pages.push_back(
        {spec.path, "text/html; charset=utf-8", render_page(spec)});
  }
  note_pages_generated(year_index, snapshot.pages);
  return snapshot;
}

}  // namespace hv::corpus
