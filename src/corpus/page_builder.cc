#include "corpus/page_builder.h"

#include <array>
#include <string_view>
#include <vector>

#include "corpus/rng.h"

namespace hv::corpus {
namespace {

using core::Violation;

constexpr std::array<std::string_view, 28> kNouns = {
    "release",  "update",   "catalog",  "project", "service", "report",
    "feature",  "platform", "customer", "market",  "product", "article",
    "review",   "story",    "guide",    "event",   "partner", "network",
    "insight",  "forecast", "summary",  "archive", "bulletin", "notice",
    "briefing", "handbook", "survey",   "digest"};

constexpr std::array<std::string_view, 24> kVerbs = {
    "launches", "improves", "announces", "expands",  "delivers", "explores",
    "reviews",  "compares", "measures",  "explains", "presents", "collects",
    "tracks",   "curates",  "covers",    "shares",   "hosts",    "features",
    "supports", "connects", "publishes", "archives", "updates",  "extends"};

constexpr std::array<std::string_view, 20> kAdjectives = {
    "quarterly", "regional", "annual",   "technical", "popular",
    "detailed",  "modern",   "improved", "seasonal",  "practical",
    "official",  "weekly",   "upcoming", "featured",  "complete",
    "expanded",  "digital",  "local",    "global",    "monthly"};

class Vocabulary {
 public:
  explicit Vocabulary(SplitMix64& rng) : rng_(rng) {}

  std::string_view noun() { return kNouns[rng_.below(kNouns.size())]; }
  std::string_view verb() { return kVerbs[rng_.below(kVerbs.size())]; }
  std::string_view adjective() {
    return kAdjectives[rng_.below(kAdjectives.size())];
  }

  std::string sentence(std::size_t words) {
    std::string out = "The ";
    out += adjective();
    out.push_back(' ');
    out += noun();
    out.push_back(' ');
    out += verb();
    for (std::size_t i = 3; i < words; ++i) {
      out.push_back(' ');
      if (rng_.chance(0.3)) {
        out += adjective();
      } else {
        out += noun();
      }
    }
    out.push_back('.');
    return out;
  }

  std::string paragraph(std::size_t sentences) {
    std::string out;
    for (std::size_t i = 0; i < sentences; ++i) {
      if (i > 0) out.push_back(' ');
      out += sentence(6 + rng_.below(8));
    }
    return out;
  }

  std::string title() {
    std::string out(adjective());
    out[0] = static_cast<char>(out[0] - 'a' + 'A');
    out.push_back(' ');
    out += noun();
    return out;
  }

  std::string slug() {
    std::string out(noun());
    out.push_back('-');
    out += std::to_string(rng_.below(900) + 100);
    return out;
  }

 private:
  SplitMix64& rng_;
};

/// Assembly buffer with the injection slots the violations target.
struct PageParts {
  bool explicit_head = true;    ///< false -> Google-404-style implicit head
  bool minimal_head = false;    ///< no URL-bearing elements in head (DM2_1)
  std::vector<std::string> head_extra;       ///< early in <head>
  std::vector<std::string> head_late;        ///< in <head>, after the links
  std::vector<std::string> between_head_body;  ///< after </head>, before <body>
  std::vector<std::string> body_start;       ///< right after <body>
  std::vector<std::string> content;          ///< main content blocks
  std::vector<std::string> body_end;         ///< before the footer
  std::vector<std::string> tail;             ///< last thing in body (DE1/DE2)
};

void add_clean_table(PageParts& parts, Vocabulary& vocab) {
  std::string table = "<table class=\"data\">\n<tr><th>Name</th><th>";
  table += vocab.noun();
  table += "</th></tr>\n";
  for (int row = 0; row < 3; ++row) {
    table += "<tr><td>";
    table += vocab.title();
    table += "</td><td>";
    table += vocab.sentence(5);
    table += "</td></tr>\n";
  }
  table += "</table>";
  parts.content.push_back(std::move(table));
}

void add_clean_form(PageParts& parts, Vocabulary& vocab) {
  std::string form =
      "<form method=\"get\" action=\"/search\">\n"
      "<label for=\"q\">Search ";
  form += vocab.noun();
  form +=
      "s</label>\n"
      "<input type=\"text\" id=\"q\" name=\"q\" placeholder=\"keyword\">\n"
      "<input type=\"submit\" value=\"Go\">\n"
      "</form>";
  parts.content.push_back(std::move(form));
}

void add_clean_svg(PageParts& parts) {
  parts.content.push_back(
      "<span class=\"icon\"><svg width=\"16\" height=\"16\" "
      "viewBox=\"0 0 16 16\"><path d=\"M2 2h12v12H2z\" "
      "fill=\"currentColor\"/><circle cx=\"8\" cy=\"8\" r=\"3\"/></svg>"
      "</span>");
}

void add_clean_math(PageParts& parts) {
  parts.content.push_back(
      "<p>The break-even point satisfies "
      "<math><mi>r</mi><mo>=</mo><mn>1</mn><mo>-</mo><mi>c</mi></math> "
      "as derived above.</p>");
}

// --- injectors (one per violation; see header for hygiene rules) -----------

void inject(PageParts& parts, Violation violation, Vocabulary& vocab,
            SplitMix64& rng) {
  switch (violation) {
    case Violation::kFB1:
      // A mangled onClick quote made the '/' land inside the tag — the
      // parser treats it as whitespace (unexpected-solidus-in-tag).
      parts.content.push_back(
          "<p>Browse the gallery "
          "<img/src=\"/img/gallery-" + vocab.slug() +
          ".jpg\"/alt=\"gallery preview\"> and more.</p>");
      return;
    case Violation::kFB2:
      // Missing space between attributes, the most common oversight.
      parts.content.push_back(
          "<p><a href=\"/topics/" + vocab.slug() +
          "\"class=\"more-link\">Read the full " +
          std::string(vocab.noun()) + "</a></p>");
      return;
    case Violation::kDM3:
      // A refactor added an alt attribute, forgetting one already existed
      // (paper Figure 14).
      parts.content.push_back(
          "<img src=\"/img/teaser-" + vocab.slug() +
          ".png\" alt=\"teaser\" alt=\"" + std::string(vocab.noun()) +
          " teaser image\" width=\"320\" height=\"180\">");
      return;
    case Violation::kDE1:
      // Copy-paste mistake: the closing </textarea> was lost, so the
      // parser swallows the rest of the page (paper Figure 3).
      parts.tail.push_back(
          "<form method=\"post\" action=\"/feedback\">\n"
          "<input type=\"submit\" value=\"Send\">\n"
          "<textarea name=\"comment\" rows=\"4\">\n");
      return;
    case Violation::kDE2:
      // Unterminated select: every following tag is dropped and its text
      // leaks into the option list.
      parts.tail.push_back(
          "<form method=\"get\" action=\"/region\">\n"
          "<select name=\"country\">\n"
          "<option>Germany\n<option>France\n<option>Japan\n");
      return;
    case Violation::kDE3_1:
      // Forgotten closing quote absorbed the following markup into the
      // URL: the value now holds a newline and a '<'.
      parts.content.push_back(
          "<img src=\"/banner.php?campaign=" + vocab.slug() +
          "\n<em>limited offer</em\" alt=\"campaign banner\">");
      return;
    case Violation::kDE3_2:
      // An embed-code widget keeps raw markup in a value attribute.
      parts.content.push_back(
          "<input type=\"hidden\" name=\"embedcode\" "
          "value='<script src=\"/widget/" + vocab.slug() +
          ".js\"></script>'>");
      return;
    case Violation::kDE3_3:
      // Unterminated target attribute with an absorbed newline
      // (paper Figure 5).
      parts.content.push_back(
          "<p><a href=\"/help/" + vocab.slug() + "\" target=\"\n"
          "_blank\">Need help?</a></p>");
      return;
    case Violation::kDE4:
      // Two nearly identical forms pasted into each other
      // (paper Figure 13, lines 1-4).
      parts.content.push_back(
          "<form method=\"get\" action=\"/search/\">\n"
          "<form id=\"keywordsearch\" name=\"keywordsearch\" method=\"get\" "
          "action=\"/search\">\n"
          "<input name=\"q\" type=\"text\" placeholder=\"Search by "
          "keyword\">\n"
          "<input type=\"submit\" value=\"Search\">\n"
          "</form>\n</form>");
      return;
    case Violation::kDM1:
      // A meta refresh dropped into the body (paper Figure 15 spirit).
      parts.content.push_back(
          "<meta http-equiv=\"refresh\" content=\"300; URL=/" +
          vocab.slug() + "\">");
      return;
    case Violation::kDM2_1:
      // Base element in the body; the page's head is kept URL-free so the
      // finding is purely "outside head" (DM2_1).
      parts.minimal_head = true;
      parts.body_start.push_back(
          "<base href=\"https://cdn.example-assets.net/\">");
      return;
    case Violation::kDM2_2:
      // Two base elements, both early in the head.
      parts.head_extra.insert(parts.head_extra.begin(),
                              "<base href=\"/\">\n<base target=\"_self\">");
      parts.minimal_head = true;
      return;
    case Violation::kDM2_3:
      // base declared after the stylesheet link that already used a URL.
      parts.head_late.push_back("<base href=\"/\">");
      return;
    case Violation::kHF1:
      switch (rng.below(3)) {
        case 0:
          // Head-only element placed after </head>.
          parts.between_head_body.push_back(
              "<link rel=\"stylesheet\" href=\"/css/late-" + vocab.slug() +
              ".css\">");
          return;
        case 1:
          // No <head> tags at all, but head content present
          // (Google 404 style, paper Figure 12).
          parts.explicit_head = false;
          return;
        default:
          // A hidden modal div left inside the head.
          parts.head_extra.push_back(
              "<div class=\"preload-overlay\" style=\"display:none\">"
              "loading</div>");
          return;
      }
    case Violation::kHF2:
      // Third-party snippet pasted between </head> and <body>.
      parts.between_head_body.push_back(
          "<div id=\"fb-root\"></div>");
      return;
    case Violation::kHF3:
      // A second body tag introduced by a template merge.
      parts.body_end.push_back("<body data-theme=\"light\">");
      return;
    case Violation::kHF4:
      if (rng.chance(0.5)) {
        // Headline row without a cell (paper Figure 11).
        parts.content.push_back(
            "<table>\n<tr><strong>" + vocab.title() +
            "</strong></tr>\n<tr>\n<td>" + vocab.sentence(8) +
            "</td>\n<td><img src=\"/img/" + vocab.slug() +
            ".jpg\" align=\"right\"></td>\n</tr>\n</table>");
      } else {
        // Loose text directly inside the table.
        parts.content.push_back(
            "<table>" + std::string(vocab.noun()) +
            " overview<tr><td>" + vocab.sentence(6) + "</td></tr></table>");
      }
      return;
    case Violation::kHF5_1:
      if (rng.chance(0.5)) {
        // Leftover </svg> from a refactor.
        parts.content.push_back(
            "<div class=\"social-links\"><a href=\"/share\">share</a>"
            "</svg></div>");
      } else {
        // CDATA block pasted from an XML feed.
        parts.content.push_back(
            "<![CDATA[legacy feed content]]>");
      }
      return;
    case Violation::kHF5_2:
      if (rng.chance(0.5)) {
        // Unclosed circle makes the </g> mismatch inside the SVG.
        parts.content.push_back(
            "<svg width=\"20\" height=\"20\" viewBox=\"0 0 20 20\">"
            "<g class=\"badge\"><circle cx=\"10\" cy=\"10\" r=\"8\"></g>"
            "</svg>");
      } else {
        // HTML fallback image inside the svg breaks out of the namespace.
        parts.content.push_back(
            "<span class=\"logo\"><svg viewBox=\"0 0 16 16\">"
            "<path d=\"M0 0h16v16H0z\"/>"
            "<img src=\"/img/logo-fallback.png\" alt=\"logo\"></span>");
      }
      return;
    case Violation::kHF5_3:
      // Misnested MathML row.
      parts.content.push_back(
          "<p>Velocity: <math><mrow><mn>3</mn><mo>+</mo><mi>t</mrow>"
          "</math></p>");
      return;
    case Violation::kCount:
      return;
  }
}

std::string assemble(const PageParts& parts, const PageSpec& spec,
                     Vocabulary& vocab, SplitMix64& rng) {
  std::string title = vocab.title();
  std::string html = "<!DOCTYPE html>\n<html lang=\"en\">\n";

  // --- head ---
  std::string head_inner = "<meta charset=\"utf-8\">\n";
  for (const std::string& extra : parts.head_extra) {
    head_inner += extra;
    head_inner.push_back('\n');
  }
  head_inner += "<title>" + title + " | " + spec.domain + "</title>\n";
  head_inner += "<meta name=\"viewport\" content=\"width=device-width, "
                "initial-scale=1\">\n";
  if (!parts.minimal_head) {
    head_inner += "<meta name=\"description\" content=\"" +
                  vocab.sentence(8) + "\">\n";
    head_inner += "<link rel=\"stylesheet\" href=\"/css/site.css\">\n";
    if (rng.chance(0.6)) {
      head_inner += "<script src=\"/js/app.js\" defer></script>\n";
    }
    if (rng.chance(0.3)) {
      head_inner += "<style>.hero{margin:0 auto;max-width:960px}</style>\n";
    }
  }
  for (const std::string& late : parts.head_late) {
    head_inner += late;
    head_inner.push_back('\n');
  }
  if (parts.explicit_head) {
    html += "<head>\n" + head_inner + "</head>\n";
  } else {
    html += head_inner;  // HF1: head content without head tags
  }
  for (const std::string& between : parts.between_head_body) {
    html += between;
    html.push_back('\n');
  }

  // --- body ---
  html += "<body class=\"page\">\n";
  for (const std::string& start : parts.body_start) {
    html += start;
    html.push_back('\n');
  }
  html += "<nav class=\"top\"><a href=\"/\">Home</a> <a href=\"/" +
          vocab.slug() + "\">" + std::string(vocab.noun()) +
          "s</a> <a href=\"/about\">About</a></nav>\n";
  html += "<main>\n<h1>" + title + "</h1>\n";
  for (const std::string& block : parts.content) {
    html += block;
    html.push_back('\n');
  }
  html += "</main>\n";
  for (const std::string& end : parts.body_end) {
    html += end;
    html.push_back('\n');
  }
  html += "<footer><p>&copy; " + std::to_string(spec.year) + " " +
          spec.domain + " &middot; all rights reserved</p></footer>\n";
  for (const std::string& tail : parts.tail) {
    html += tail;
    html.push_back('\n');
  }
  if (parts.tail.empty()) {
    html += "</body>\n</html>\n";
  }
  // DE1/DE2 pages intentionally never reach </body>: the unterminated
  // element swallows the rest of the file, as in the wild.
  return html;
}

}  // namespace

std::string render_page(const PageSpec& spec) {
  SplitMix64 rng(mix(spec.seed, fnv1a(spec.domain) ^ fnv1a(spec.path)));
  Vocabulary vocab(rng);
  PageParts parts;

  // Baseline content.
  const int paragraphs = 2 + static_cast<int>(rng.below(4));
  for (int i = 0; i < paragraphs; ++i) {
    parts.content.push_back("<p>" + vocab.paragraph(2 + rng.below(3)) +
                            "</p>");
  }
  if (rng.chance(0.5)) add_clean_table(parts, vocab);
  if (rng.chance(0.4)) add_clean_form(parts, vocab);
  if (spec.quirk_uses_svg) add_clean_svg(parts);
  if (spec.quirk_uses_math) add_clean_math(parts);
  if (spec.quirk_newline_in_url) {
    // A templating engine wrapped the URL across lines: legal but exactly
    // what the section 4.5 mitigation telemetry counts.
    parts.content.push_back("<a href=\"/promotions/autumn\n-sale\">"
                            "Seasonal offers</a>");
  }
  if (rng.chance(0.4)) {
    parts.content.push_back("<ul><li>" + vocab.sentence(5) + "</li><li>" +
                            vocab.sentence(6) + "</li></ul>");
  }

  // Violations. DE1/DE2 go to `tail` inside their injectors; everything
  // else lands in regular slots.  If both DE1 and DE2 are scheduled for
  // the same page, DE2 is dropped here — the generator assigns them to
  // different pages, this is a final guard (an open textarea would
  // swallow the select and hide it from the checker anyway).
  auto violations = spec.violations;
  if (violations.test(static_cast<std::size_t>(Violation::kDE1)) &&
      violations.test(static_cast<std::size_t>(Violation::kDE2))) {
    violations.reset(static_cast<std::size_t>(Violation::kDE2));
  }
  for (std::size_t v = 0; v < core::kViolationCount; ++v) {
    if (violations.test(v)) {
      inject(parts, static_cast<Violation>(v), vocab, rng);
    }
  }
  return assemble(parts, spec, vocab, rng);
}

std::string render_non_html_payload(const PageSpec& spec) {
  SplitMix64 rng(mix(spec.seed, fnv1a(spec.domain)));
  return "{\"service\":\"" + spec.domain + "\",\"status\":\"ok\",\"id\":" +
         std::to_string(rng.below(100000)) + "}";
}

bool violation_possible_in_fragment(core::Violation violation) noexcept {
  switch (violation) {
    case Violation::kHF1:
    case Violation::kHF2:
    case Violation::kHF3:
    case Violation::kDM2_1:
    case Violation::kDM2_2:
    case Violation::kDM2_3:
      return false;  // require a document head/body structure
    default:
      return violation != Violation::kCount;
  }
}

std::string render_fragment(const PageSpec& spec) {
  SplitMix64 rng(mix(spec.seed, fnv1a(spec.domain) ^ fnv1a(spec.path) ^
                                    0xF4A6));
  Vocabulary vocab(rng);
  PageParts parts;

  // Typical dynamically loaded partials.
  switch (rng.below(4)) {
    case 0: {  // product cards
      for (int i = 0; i < 3; ++i) {
        parts.content.push_back(
            "<div class=\"card\"><h3>" + vocab.title() +
            "</h3><p>" + vocab.sentence(7) + "</p>"
            "<a href=\"/item/" + vocab.slug() + "\">details</a></div>");
      }
      break;
    }
    case 1: {  // comments partial
      parts.content.push_back("<ul class=\"comments\">");
      for (int i = 0; i < 3; ++i) {
        parts.content.push_back("<li><b>user" +
                                std::to_string(rng.below(999)) + "</b> " +
                                vocab.sentence(9) + "</li>");
      }
      parts.content.push_back("</ul>");
      break;
    }
    case 2:  // modal dialog
      parts.content.push_back(
          "<div class=\"modal\" role=\"dialog\"><h2>" + vocab.title() +
          "</h2><p>" + vocab.paragraph(2) +
          "</p><button type=\"button\">Close</button></div>");
      break;
    default:  // search-results partial with a small table
      add_clean_table(parts, vocab);
      break;
  }

  auto violations = spec.violations;
  if (violations.test(static_cast<std::size_t>(Violation::kDE1)) &&
      violations.test(static_cast<std::size_t>(Violation::kDE2))) {
    violations.reset(static_cast<std::size_t>(Violation::kDE2));
  }
  for (std::size_t v = 0; v < core::kViolationCount; ++v) {
    if (!violations.test(v)) continue;
    const auto violation = static_cast<Violation>(v);
    if (!violation_possible_in_fragment(violation)) continue;
    inject(parts, violation, vocab, rng);
  }

  std::string fragment;
  for (const std::string& block : parts.content) {
    fragment += block;
    fragment.push_back('\n');
  }
  for (const std::string& tail : parts.tail) {
    fragment += tail;
    fragment.push_back('\n');
  }
  return fragment;
}

std::string render_non_utf8_page(const PageSpec& spec) {
  std::string page =
      "<!DOCTYPE html>\n<html>\n<head><title>Caf\xE9 " + spec.domain +
      "</title></head>\n<body><p>R\xE9sum\xE9 of the day: cr\xE8me "
      "br\xFBl\xE9""e.</p></body>\n</html>\n";
  return page;  // Latin-1 bytes: rejected by the UTF-8 filter
}

}  // namespace hv::corpus
