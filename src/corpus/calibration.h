// Statistical calibration of the synthetic corpus against the paper.
//
// The corpus must reproduce three families of published statistics at
// once (DESIGN.md section 2):
//   1. yearly marginals  — % of domains violating v in year y
//                          (Figures 16-21),
//   2. 8-year unions     — % of domains violating v at least once
//                          (Figure 8: FB2 78.5% despite yearly ~45%), and
//   3. any-violation     — % of domains with >=1 violation per year
//                          (Figure 9: 74.3% -> 68.4%, far below the
//                          independence prediction of ~95%).
//
// Model: a Gaussian copula with one latent factor per level.  For domain
// d, violation v, year y:
//
//     z_dvy = w * z_d  +  c_v * n_dv  +  e_v * eps_dvy,
//     w^2 + c_v^2 + e_v^2 = 1,      violate  <=>  z_dvy < theta_vy
//
// where z_d is the domain's "sloppiness" (messy sites violate many rules —
// this produces the sub-independence any-rate), n_dv is the per-(domain,
// violation) persistence (a site that glues attributes keeps gluing them —
// this produces the union/yearly gap), and eps is yearly churn (refactors
// add and remove violations, section 5.2).  Setting theta_vy to the normal
// quantile of the target rate makes marginal (1) exact by construction;
// `solve` finds w to match the 2015 any-rate and each c_v to match the
// Figure 8 union, both by bisection over Monte-Carlo estimates.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/violation.h"

namespace hv::corpus {

inline constexpr int kYears = 8;

struct SeriesTarget {
  /// Target rate per year, as a fraction of domains (0..1).
  std::array<double, kYears> yearly{};
  /// Target 8-year union, fraction of domains; <= 0 disables union
  /// fitting (the series weight defaults to a moderate persistence).
  double union_fraction = -1.0;
};

/// Calibrated parameters for one violation (or benign quirk) series.
struct CalibratedSeries {
  std::array<double, kYears> thresholds{};  ///< theta_vy = Phi^-1(rate)
  double domain_weight = 0.0;               ///< w
  double series_weight = 0.0;               ///< c_v
  double noise_weight = 1.0;                ///< e_v

  /// Whether (z_d, n_dv, eps) trips the series in year `y`.
  bool active(double z_domain, double n_series, double eps,
              int y) const noexcept {
    const double z = domain_weight * z_domain + series_weight * n_series +
                     noise_weight * eps;
    return z < thresholds[static_cast<std::size_t>(y)];
  }
};

struct Calibration {
  std::array<CalibratedSeries, core::kViolationCount> violations{};
  double domain_weight = 0.0;

  /// Solves the copula parameters for the given per-violation targets and
  /// the target 2015 any-violation rate.  Deterministic in `seed`.
  static Calibration solve(
      const std::array<SeriesTarget, core::kViolationCount>& targets,
      double any_rate_2015, std::uint64_t seed, int monte_carlo_samples = 3000);

  /// Calibrates an independent auxiliary series (benign quirks such as
  /// newline-in-URL or math usage) that shares the domain factor.
  static CalibratedSeries solve_single(const SeriesTarget& target,
                                       double domain_weight,
                                       std::uint64_t seed,
                                       int monte_carlo_samples = 3000);
};

/// Builds the calibration targets from the paper's published series
/// (report/paper_data.h).
std::array<SeriesTarget, core::kViolationCount> paper_targets();

}  // namespace hv::corpus
