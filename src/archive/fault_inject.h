// Deterministic WARC corruption for the fault-injection harness
// (DESIGN.md section 12).  Mutations are length-preserving wherever
// possible so the CDX index's offsets stay valid for every record —
// corrupt records then fail *inside* next() with a typed ReadError, and a
// study's quarantine count can be compared 1:1 against the injected-fault
// count.  Only "response" records are targeted: warcinfo records are not
// indexed in the CDX, so mutating one would break the count equality the
// harness asserts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hv::archive {

/// The corruption classes the mutator can apply to a record.
enum class FaultKind : std::uint8_t {
  kVersionBitFlip = 0,  ///< flip a bit in "WARC/1.0" → kBadVersionLine
  kHeaderGarbage,       ///< destroy a header's ':' → kMalformedHeader
  kLengthRewrite,       ///< garble Content-Length → kBad/kOversized...
  kTruncateTail,        ///< cut the file mid-payload → kTruncatedPayload
                        ///< (mid-member on .warc.gz → kTruncatedGzipMember)
  kGzipFrameCorrupt,    ///< flip a bit in a gzip member's DEFLATE body →
                        ///< kBadGzipMember (or kTruncatedGzipMember when
                        ///< the flip derails the block structure)
};

std::string_view to_string(FaultKind kind) noexcept;

/// One applied mutation, reported so tests and tools can reconcile
/// quarantine counters against exactly these records.
struct InjectedFault {
  std::uint64_t record_offset = 0;  ///< matches the CDX entry's offset
  FaultKind kind = FaultKind::kVersionBitFlip;
  std::string target_uri;  ///< WARC-Target-URI of the mutated record
};

struct FaultPlan {
  std::vector<InjectedFault> faults;
  std::size_t response_records = 0;  ///< candidates scanned
};

struct FaultInjectConfig {
  double rate = 0.02;      ///< fraction of response records to corrupt
  std::uint64_t seed = 1;  ///< deterministic selection + kind choice
  /// Also truncate the file inside the last response record's payload
  /// (destructive to every later byte, so opt-in and applied last).
  bool truncate_tail = false;
};

/// Structurally scans a well-formed WARC byte string and corrupts a
/// seeded ~`rate` fraction of its response records in place.  Detects the
/// framing from the first bytes: plain archives get the line-level kinds,
/// per-record-gzip archives (.warc.gz) get kGzipFrameCorrupt bit flips —
/// in both cases mutations stay inside the record's on-disk span so CDX
/// offsets remain valid and quarantine counts reconcile 1:1 with the
/// plan.  Returns the plan of applied faults, ordered by record offset.
/// Throws std::runtime_error if the input is not well-formed WARC (the
/// mutator is for corrupting good archives, not re-corrupting bad ones).
FaultPlan inject_faults(std::string* warc_bytes,
                        const FaultInjectConfig& config);

}  // namespace hv::archive
