// WARC 1.0 record framing (ISO 28500 subset) — the storage format of
// Common Crawl's archives, which the paper's crawler reads directly from
// S3 ("we can request the database and S3 bucket directly").
//
// A WARC file is a sequence of records:
//
//   WARC/1.0 CRLF
//   <header-name>: <value> CRLF ...
//   CRLF
//   <Content-Length bytes of payload> CRLF CRLF
//
// For "response" records the payload is a verbatim HTTP response message
// (parsed by hv::net::parse_http_response).  Two on-disk framings are
// supported (DESIGN.md sections 5 and 17):
//
//   * plain    — records written verbatim, offsets into the raw stream;
//   * gzip     — one gzip member per record, Common Crawl's real layout,
//                where CDX offsets/lengths address the *compressed* stream
//                and each member is independently decodable.
//
// WarcWriter picks the framing at construction; WarcReader detects it per
// record from the gzip magic bytes, so mixed archives and transparent reads
// of either layout work with the same code path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "archive/read_error.h"

namespace hv::archive {

/// Sanity cap on a record's Content-Length claim: 256 MiB.  (Common Crawl
/// truncates response *payloads* far earlier — historically at 1 MiB — but
/// the framing cap is deliberately looser so oversized-yet-real records
/// still parse.)  Anything claiming more than this is a corrupt or hostile
/// header, and rejecting it up front keeps a rewritten length from driving
/// an unbounded payload allocation.  The same cap bounds how many bytes a
/// single gzip member may inflate to, so a tiny corrupt frame cannot
/// decompress-bomb the reader.
inline constexpr std::uint64_t kMaxPayloadBytes = 256ull * 1024 * 1024;

struct WarcHeader {
  std::string name;
  std::string value;
};

struct WarcRecord {
  std::string type;  ///< "warcinfo", "response", "request", "metadata"
  std::string target_uri;
  std::string date;  ///< WARC-Date, e.g. "2015-03-18T12:00:00Z"
  std::vector<WarcHeader> extra_headers;
  std::string payload;

  std::optional<std::string_view> header(std::string_view name) const;
};

/// On-disk framing emitted by WarcWriter.
enum class WarcCompression : std::uint8_t {
  kNone = 0,  ///< plain-text records (the .warc layout)
  kGzip,      ///< one gzip member per record (the .warc.gz layout)
};

/// Streams records into an ostream with correct framing and offsets.  In
/// gzip mode each record is deflated as a self-contained member, and the
/// reported offsets/lengths are those of the *compressed* bytes — exactly
/// what the CDX index must store for range reads of .warc.gz archives.
class WarcWriter {
 public:
  explicit WarcWriter(std::ostream& out,
                      WarcCompression compression = WarcCompression::kNone);

  /// Writes a warcinfo record describing the archive (software, label).
  void write_warcinfo(std::string_view snapshot_label);

  /// Writes a response record; returns the byte offset of the record
  /// start (for the CDX index) and fills `*length` with the record size.
  std::uint64_t write_response(std::string_view target_uri,
                               std::string_view date,
                               std::string_view http_message,
                               std::uint64_t* length = nullptr);

  std::uint64_t bytes_written() const noexcept { return offset_; }

 private:
  std::uint64_t write_record(const WarcRecord& record);

  std::ostream& out_;
  WarcCompression compression_;
  std::uint64_t offset_ = 0;
  std::uint64_t record_counter_ = 0;
};

/// Sequentially reads records from an istream.
class WarcReader {
 public:
  explicit WarcReader(std::istream& in);

  /// Reads the next record; nullopt at clean EOF.  A record starting with
  /// the gzip magic bytes is transparently inflated first (one member per
  /// record); plain records are parsed in place.  Throws archive::ReadError
  /// (a std::runtime_error) on framing corruption — bad version line,
  /// malformed header, bad/oversized Content-Length, truncated payload,
  /// bad/truncated gzip member — with the offending kind and record offset
  /// attached (for gzip records the offset of the *member*, i.e. the CDX
  /// offset).  After a throw the reader is in a corrupt state; call seek()
  /// or resync() before reading again.
  std::optional<WarcRecord> next();

  /// Byte offset of the record that `next` would read.
  std::uint64_t offset() const noexcept { return offset_; }

  /// Seeks to an absolute record offset (random access via CDX).
  void seek(std::uint64_t offset);

  /// Corruption recovery: scans forward from `from_offset` for the next
  /// record boundary — a line that is exactly "WARC/1.0", or the gzip
  /// member magic (0x1f 0x8b 0x08) — leaves the reader positioned there,
  /// and returns that offset, or std::nullopt when no further boundary
  /// exists before EOF.  Sequential consumers call this after a ReadError
  /// to skip the corrupt region and continue.  A magic match inside a
  /// binary payload can be a false positive; callers already loop
  /// (next/resync) so a bad candidate just costs one more ReadError.
  std::optional<std::uint64_t> resync(std::uint64_t from_offset);

 private:
  /// Counts the error in obs and throws; marks the reader corrupt so the
  /// redundant-seek optimization never trusts `offset_` afterwards.
  [[noreturn]] void fail(ReadErrorKind kind, std::uint64_t offset,
                         std::string_view detail);

  /// Reads + inflates the gzip member starting at `record_start` (stream
  /// already positioned there) and parses the record inside it.
  WarcRecord next_gzip_record(std::uint64_t record_start);

  /// Parses one record from decompressed (or in-memory) text; errors are
  /// reported at `report_offset`, the member's compressed-stream offset.
  WarcRecord parse_record_text(std::string_view text,
                               std::uint64_t report_offset);

  std::istream& in_;
  std::uint64_t offset_ = 0;
  /// Total stream size when the stream is seekable (files, stringstreams);
  /// lets Content-Length claims be checked against the bytes that exist.
  std::optional<std::uint64_t> stream_size_;
  /// Set when next() threw: offset_ no longer matches the stream position.
  bool corrupt_ = false;
  /// Scratch buffers reused across gzip records to avoid per-record churn.
  std::string member_buf_;
  std::string inflate_buf_;
};

}  // namespace hv::archive
