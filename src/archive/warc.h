// WARC 1.0 record framing (ISO 28500 subset) — the storage format of
// Common Crawl's archives, which the paper's crawler reads directly from
// S3 ("we can request the database and S3 bucket directly").
//
// A WARC file is a sequence of records:
//
//   WARC/1.0 CRLF
//   <header-name>: <value> CRLF ...
//   CRLF
//   <Content-Length bytes of payload> CRLF CRLF
//
// For "response" records the payload is a verbatim HTTP response message
// (parsed by hv::net::parse_http_response).  Compression is out of scope
// (DESIGN.md section 5): Common Crawl ships gzip members, we ship plain
// records — the framing, indexing, and range-read logic is identical.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "archive/read_error.h"

namespace hv::archive {

/// Sanity cap on a record's Content-Length claim.  Common Crawl truncates
/// response payloads at 1 MiB; anything claiming more than this is a
/// corrupt or hostile header, and rejecting it up front keeps a rewritten
/// length from driving an unbounded payload allocation.
inline constexpr std::uint64_t kMaxPayloadBytes = 256ull * 1024 * 1024;

struct WarcHeader {
  std::string name;
  std::string value;
};

struct WarcRecord {
  std::string type;  ///< "warcinfo", "response", "request", "metadata"
  std::string target_uri;
  std::string date;  ///< WARC-Date, e.g. "2015-03-18T12:00:00Z"
  std::vector<WarcHeader> extra_headers;
  std::string payload;

  std::optional<std::string_view> header(std::string_view name) const;
};

/// Streams records into an ostream with correct framing and offsets.
class WarcWriter {
 public:
  explicit WarcWriter(std::ostream& out);

  /// Writes a warcinfo record describing the archive (software, label).
  void write_warcinfo(std::string_view snapshot_label);

  /// Writes a response record; returns the byte offset of the record
  /// start (for the CDX index) and fills `*length` with the record size.
  std::uint64_t write_response(std::string_view target_uri,
                               std::string_view date,
                               std::string_view http_message,
                               std::uint64_t* length = nullptr);

  std::uint64_t bytes_written() const noexcept { return offset_; }

 private:
  std::uint64_t write_record(const WarcRecord& record);

  std::ostream& out_;
  std::uint64_t offset_ = 0;
  std::uint64_t record_counter_ = 0;
};

/// Sequentially reads records from an istream.
class WarcReader {
 public:
  explicit WarcReader(std::istream& in);

  /// Reads the next record; nullopt at clean EOF.  Throws
  /// archive::ReadError (a std::runtime_error) on framing corruption —
  /// bad version line, malformed header, bad/oversized Content-Length,
  /// truncated payload — with the offending kind and record offset
  /// attached.  After a throw the reader is in a corrupt state; call
  /// seek() or resync() before reading again.
  std::optional<WarcRecord> next();

  /// Byte offset of the record that `next` would read.
  std::uint64_t offset() const noexcept { return offset_; }

  /// Seeks to an absolute record offset (random access via CDX).
  void seek(std::uint64_t offset);

  /// Corruption recovery: scans forward from `from_offset` for the next
  /// line that is exactly "WARC/1.0" (a record boundary), leaves the
  /// reader positioned there, and returns that offset — or std::nullopt
  /// when no further boundary exists before EOF.  Sequential consumers
  /// call this after a ReadError to skip the corrupt region and continue.
  std::optional<std::uint64_t> resync(std::uint64_t from_offset);

 private:
  /// Counts the error in obs and throws; marks the reader corrupt so the
  /// redundant-seek optimization never trusts `offset_` afterwards.
  [[noreturn]] void fail(ReadErrorKind kind, std::uint64_t offset,
                         std::string_view detail);

  std::istream& in_;
  std::uint64_t offset_ = 0;
  /// Total stream size when the stream is seekable (files, stringstreams);
  /// lets Content-Length claims be checked against the bytes that exist.
  std::optional<std::uint64_t> stream_size_;
  /// Set when next() threw: offset_ no longer matches the stream position.
  bool corrupt_ = false;
};

}  // namespace hv::archive
