#include "archive/gzip.h"

#include <array>
#include <cstddef>
#include <vector>

namespace hv::archive::gzip {
namespace {

// ---------------------------------------------------------------------------
// CRC-32 (reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// ---------------------------------------------------------------------------
// Inflate
// ---------------------------------------------------------------------------

// Thrown internally to unwind out of the decode loops; converted to an
// InflateResult at the inflate_member boundary. `detail` points at a string
// literal so no allocation happens on the error path.
struct InflateError {
  InflateStatus status;
  const char* detail;
};

[[noreturn]] void bad(const char* detail) {
  throw InflateError{InflateStatus::kBad, detail};
}
[[noreturn]] void truncated(const char* detail) {
  throw InflateError{InflateStatus::kTruncated, detail};
}

// LSB-first bit reader over the member bytes. Running out of input always
// means the member was cut short, never an out-of-bounds read.
struct BitReader {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;          // next unread byte
  std::uint32_t bitbuf = 0;     // buffered bits, LSB = next bit
  int bitcnt = 0;

  std::uint32_t bits(int need) {
    while (bitcnt < need) {
      if (pos == size) truncated("member ends mid-bitstream");
      bitbuf |= static_cast<std::uint32_t>(data[pos++]) << bitcnt;
      bitcnt += 8;
    }
    const std::uint32_t value = bitbuf & ((1u << need) - 1u);
    bitbuf >>= need;
    bitcnt -= need;
    return value;
  }

  // Discards bits up to the next byte boundary and returns any whole bytes
  // sitting in the bit buffer to `pos`, so byte-oriented reads (stored
  // blocks, the trailer) resume at the right place.
  void align_to_byte() {
    const int drop = bitcnt & 7;
    bitbuf >>= drop;
    bitcnt -= drop;
    pos -= static_cast<std::size_t>(bitcnt / 8);
    bitbuf = 0;
    bitcnt = 0;
  }

  // Byte-aligned read; only valid straight after align_to_byte().
  const unsigned char* bytes(std::size_t n, const char* what) {
    if (size - pos < n) truncated(what);
    const unsigned char* p = data + pos;
    pos += n;
    return p;
  }
};

// Canonical Huffman code, decoded bit-by-bit (puff-style). Small and
// impossible to index out of bounds: `symbol` is exactly as long as the
// number of coded symbols.
struct Huffman {
  std::array<std::uint16_t, 16> count{};  // count[len] = codes of that length
  std::array<std::uint16_t, 288> symbol{};
};

// Builds the canonical code from `lengths[0..n)`. Rejects oversubscribed
// code sets; incomplete sets are allowed (decode errors out if an undefined
// code actually appears in the stream).
void construct(Huffman* h, const unsigned char* lengths, int n) {
  h->count.fill(0);
  for (int sym = 0; sym < n; ++sym) {
    h->count[lengths[sym]]++;
  }
  int left = 1;  // codes left unassigned at the current length
  for (int len = 1; len <= 15; ++len) {
    left <<= 1;
    left -= h->count[len];
    if (left < 0) bad("oversubscribed Huffman code set");
  }
  std::array<std::uint16_t, 16> offs{};
  for (int len = 1; len < 15; ++len) {
    offs[len + 1] = static_cast<std::uint16_t>(offs[len] + h->count[len]);
  }
  for (int sym = 0; sym < n; ++sym) {
    if (lengths[sym] != 0) {
      h->symbol[offs[lengths[sym]]++] = static_cast<std::uint16_t>(sym);
    }
  }
}

int decode(BitReader* br, const Huffman& h) {
  int code = 0, first = 0, index = 0;
  for (int len = 1; len <= 15; ++len) {
    code |= static_cast<int>(br->bits(1));
    const int count = h.count[len];
    if (code - first < count) return h.symbol[index + (code - first)];
    index += count;
    first = (first + count) << 1;
    code <<= 1;
  }
  bad("invalid Huffman code in compressed data");
}

const Huffman& fixed_litlen_code() {
  static const Huffman h = [] {
    Huffman code;
    unsigned char lengths[288];
    int sym = 0;
    for (; sym < 144; ++sym) lengths[sym] = 8;
    for (; sym < 256; ++sym) lengths[sym] = 9;
    for (; sym < 280; ++sym) lengths[sym] = 7;
    for (; sym < 288; ++sym) lengths[sym] = 8;
    construct(&code, lengths, 288);
    return code;
  }();
  return h;
}

const Huffman& fixed_dist_code() {
  static const Huffman h = [] {
    Huffman code;
    unsigned char lengths[30];
    for (int sym = 0; sym < 30; ++sym) lengths[sym] = 5;
    construct(&code, lengths, 30);
    return code;
  }();
  return h;
}

// Length and distance symbol expansion tables (RFC 1951 section 3.2.5).
constexpr std::uint16_t kLengthBase[29] = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::uint8_t kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                           1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                           4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::uint16_t kDistBase[30] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::uint8_t kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                         4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                         9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

struct Output {
  std::string* out;
  std::size_t start;  // out->size() when this member began
  std::uint64_t cap;  // max bytes this member may produce

  std::uint64_t produced() const { return out->size() - start; }

  void push(char byte) {
    if (produced() + 1 > cap) bad("output cap exceeded");
    out->push_back(byte);
  }

  void copy_back(std::size_t dist, std::size_t len) {
    if (dist == 0 || dist > produced()) bad("distance too far back");
    if (produced() + len > cap) bad("output cap exceeded");
    // Byte-at-a-time on purpose: overlapping copies (dist < len) must see
    // bytes written earlier in the same run.
    std::size_t from = out->size() - dist;
    for (std::size_t i = 0; i < len; ++i) {
      out->push_back((*out)[from + i]);
    }
  }

  void append(const unsigned char* data, std::size_t len) {
    if (produced() + len > cap) bad("output cap exceeded");
    out->append(reinterpret_cast<const char*>(data), len);
  }
};

// Decodes Huffman-coded literal/length/distance symbols until end-of-block.
void inflate_codes(BitReader* br, const Huffman& litlen, const Huffman& dist,
                   Output* out) {
  for (;;) {
    const int sym = decode(br, litlen);
    if (sym < 256) {
      out->push(static_cast<char>(sym));
      continue;
    }
    if (sym == 256) return;  // end of block
    if (sym > 285) bad("invalid length symbol");
    const int lidx = sym - 257;
    const std::size_t len =
        kLengthBase[lidx] + br->bits(kLengthExtra[lidx]);
    const int dsym = decode(br, dist);
    if (dsym > 29) bad("invalid distance symbol");
    const std::size_t distance =
        kDistBase[dsym] + br->bits(kDistExtra[dsym]);
    out->copy_back(distance, len);
  }
}

void inflate_stored(BitReader* br, Output* out) {
  br->align_to_byte();
  const unsigned char* head = br->bytes(4, "stored block header cut short");
  const std::size_t len = head[0] | (static_cast<std::size_t>(head[1]) << 8);
  const std::size_t nlen = head[2] | (static_cast<std::size_t>(head[3]) << 8);
  if (len != (~nlen & 0xFFFFu)) bad("stored block length check failed");
  const unsigned char* data = br->bytes(len, "stored block data cut short");
  out->append(data, len);
}

void inflate_dynamic(BitReader* br, Output* out) {
  const int nlen = static_cast<int>(br->bits(5)) + 257;
  const int ndist = static_cast<int>(br->bits(5)) + 1;
  const int ncode = static_cast<int>(br->bits(4)) + 4;
  if (nlen > 286) bad("too many literal/length codes");
  if (ndist > 30) bad("too many distance codes");

  static constexpr std::uint8_t kOrder[19] = {16, 17, 18, 0, 8,  7, 9,
                                              6,  10, 5,  11, 4, 12, 3,
                                              13, 2,  14, 1,  15};
  unsigned char clen_lengths[19] = {0};
  for (int i = 0; i < ncode; ++i) {
    clen_lengths[kOrder[i]] = static_cast<unsigned char>(br->bits(3));
  }
  Huffman clen_code;
  construct(&clen_code, clen_lengths, 19);

  unsigned char lengths[288 + 30] = {0};
  int index = 0;
  while (index < nlen + ndist) {
    const int sym = decode(br, clen_code);
    if (sym < 16) {
      lengths[index++] = static_cast<unsigned char>(sym);
      continue;
    }
    int repeat;
    unsigned char value = 0;
    if (sym == 16) {
      if (index == 0) bad("code-length repeat with no previous length");
      value = lengths[index - 1];
      repeat = 3 + static_cast<int>(br->bits(2));
    } else if (sym == 17) {
      repeat = 3 + static_cast<int>(br->bits(3));
    } else {
      repeat = 11 + static_cast<int>(br->bits(7));
    }
    if (index + repeat > nlen + ndist) bad("code-length repeat overflows");
    while (repeat-- > 0) lengths[index++] = value;
  }
  if (lengths[256] == 0) bad("dynamic block has no end-of-block code");

  Huffman litlen_code, dist_code;
  construct(&litlen_code, lengths, nlen);
  construct(&dist_code, lengths + nlen, ndist);
  inflate_codes(br, litlen_code, dist_code, out);
}

std::uint32_t read_le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

// Parses the RFC 1952 member header, returning the offset of the first
// DEFLATE byte. Reserved flag bits and non-DEFLATE methods are rejected
// outright; the optional fields are skipped with bounds checks.
std::size_t parse_gzip_header(std::string_view input) {
  const auto* data = reinterpret_cast<const unsigned char*>(input.data());
  if (input.size() < 10) truncated("member shorter than gzip header");
  if (data[0] != 0x1f || data[1] != 0x8b) bad("bad gzip magic");
  if (data[2] != 8) bad("unsupported compression method");
  const unsigned char flg = data[3];
  if (flg & 0xE0u) bad("reserved gzip FLG bits set");
  std::size_t pos = 10;  // magic(2) method(1) flg(1) mtime(4) xfl(1) os(1)
  if (flg & 0x04u) {     // FEXTRA
    if (input.size() - pos < 2) truncated("FEXTRA length cut short");
    const std::size_t xlen =
        data[pos] | (static_cast<std::size_t>(data[pos + 1]) << 8);
    pos += 2;
    if (input.size() - pos < xlen) truncated("FEXTRA field cut short");
    pos += xlen;
  }
  for (const unsigned char bit : {static_cast<unsigned char>(0x08u),   // FNAME
                                  static_cast<unsigned char>(0x10u)}) {// FCOMMENT
    if (flg & bit) {
      const std::size_t nul = input.find('\0', pos);
      if (nul == std::string_view::npos) {
        truncated("gzip header string field cut short");
      }
      pos = nul + 1;
    }
  }
  if (flg & 0x02u) {  // FHCRC: CRC-16 of the header bytes so far
    if (input.size() - pos < 2) truncated("FHCRC field cut short");
    const std::uint32_t want =
        data[pos] | (static_cast<std::uint32_t>(data[pos + 1]) << 8);
    const std::uint32_t got = crc32(input.substr(0, pos)) & 0xFFFFu;
    if (want != got) bad("gzip header CRC mismatch");
    pos += 2;
  }
  return pos;
}

// ---------------------------------------------------------------------------
// Deflate (fixed-Huffman only)
// ---------------------------------------------------------------------------

std::uint32_t reverse_bits(std::uint32_t code, int len) {
  std::uint32_t reversed = 0;
  for (int i = 0; i < len; ++i) {
    reversed = (reversed << 1) | ((code >> i) & 1u);
  }
  return reversed;
}

// LSB-first bit accumulator; DEFLATE Huffman codes are emitted with their
// bits pre-reversed so the decoder sees them MSB-first as the spec requires.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  void put(std::uint32_t value, int nbits) {
    buf_ |= static_cast<std::uint64_t>(value) << cnt_;
    cnt_ += nbits;
    while (cnt_ >= 8) {
      out_->push_back(static_cast<char>(buf_ & 0xFFu));
      buf_ >>= 8;
      cnt_ -= 8;
    }
  }

  void put_code(std::uint32_t code, int len) { put(reverse_bits(code, len), len); }

  void finish() {
    if (cnt_ > 0) {
      out_->push_back(static_cast<char>(buf_ & 0xFFu));
      buf_ = 0;
      cnt_ = 0;
    }
  }

 private:
  std::string* out_;
  std::uint64_t buf_ = 0;
  int cnt_ = 0;
};

void put_fixed_litlen(BitWriter* bw, int sym) {
  if (sym < 144) {
    bw->put_code(0x30u + static_cast<std::uint32_t>(sym), 8);
  } else if (sym < 256) {
    bw->put_code(0x190u + static_cast<std::uint32_t>(sym - 144), 9);
  } else if (sym < 280) {
    bw->put_code(static_cast<std::uint32_t>(sym - 256), 7);
  } else {
    bw->put_code(0xC0u + static_cast<std::uint32_t>(sym - 280), 8);
  }
}

void put_length(BitWriter* bw, std::size_t len) {
  int idx = 28;
  while (idx > 0 && kLengthBase[idx] > len) --idx;
  put_fixed_litlen(bw, 257 + idx);
  bw->put(static_cast<std::uint32_t>(len - kLengthBase[idx]),
          kLengthExtra[idx]);
}

void put_distance(BitWriter* bw, std::size_t dist) {
  int idx = 29;
  while (idx > 0 && kDistBase[idx] > dist) --idx;
  bw->put_code(static_cast<std::uint32_t>(idx), 5);
  bw->put(static_cast<std::uint32_t>(dist - kDistBase[idx]), kDistExtra[idx]);
}

constexpr std::size_t kWindowSize = 32768;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;
constexpr int kHashBits = 15;
constexpr int kMaxChain = 32;

std::uint32_t hash3(const unsigned char* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Greedy LZ77 + fixed-Huffman encode of `input` as one DEFLATE block.
void deflate_fixed_block(std::string_view input, BitWriter* bw) {
  bw->put(1, 1);  // BFINAL
  bw->put(1, 2);  // BTYPE = 01 (fixed Huffman)

  const auto* data = reinterpret_cast<const unsigned char*>(input.data());
  const std::size_t n = input.size();
  std::vector<std::int64_t> head(std::size_t{1} << kHashBits, -1);
  std::vector<std::int64_t> prev(n, -1);

  auto insert = [&](std::size_t pos) {
    if (pos + kMinMatch > n) return;
    const std::uint32_t h = hash3(data + pos);
    prev[pos] = head[h];
    head[h] = static_cast<std::int64_t>(pos);
  };

  std::size_t i = 0;
  while (i < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      const std::size_t max_len = std::min(kMaxMatch, n - i);
      std::int64_t cand = head[hash3(data + i)];
      for (int chain = 0; cand >= 0 && chain < kMaxChain; ++chain) {
        const std::size_t c = static_cast<std::size_t>(cand);
        if (i - c > kWindowSize) break;
        std::size_t len = 0;
        while (len < max_len && data[c + len] == data[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len == max_len) break;
        }
        cand = prev[c];
      }
    }
    if (best_len >= kMinMatch) {
      put_length(bw, best_len);
      put_distance(bw, best_dist);
      for (std::size_t j = 0; j < best_len; ++j) insert(i + j);
      i += best_len;
    } else {
      put_fixed_litlen(bw, data[i]);
      insert(i);
      ++i;
    }
  }
  put_fixed_litlen(bw, 256);  // end of block
}

void put_le32(std::string* out, std::uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFFu));
  out->push_back(static_cast<char>((value >> 8) & 0xFFu));
  out->push_back(static_cast<char>((value >> 16) & 0xFFu));
  out->push_back(static_cast<char>((value >> 24) & 0xFFu));
}

}  // namespace

bool has_gzip_magic(std::string_view bytes) {
  return bytes.size() >= 3 && static_cast<unsigned char>(bytes[0]) == 0x1f &&
         static_cast<unsigned char>(bytes[1]) == 0x8b &&
         static_cast<unsigned char>(bytes[2]) == 0x08;
}

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  const auto& table = crc_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (const char c : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

InflateResult inflate_member(std::string_view input, std::string* out,
                             std::uint64_t max_output_bytes) {
  Output output{out, out->size(), max_output_bytes};
  try {
    BitReader br{reinterpret_cast<const unsigned char*>(input.data()),
                 input.size()};
    br.pos = parse_gzip_header(input);
    for (;;) {
      const std::uint32_t bfinal = br.bits(1);
      const std::uint32_t btype = br.bits(2);
      switch (btype) {
        case 0:
          inflate_stored(&br, &output);
          break;
        case 1:
          inflate_codes(&br, fixed_litlen_code(), fixed_dist_code(), &output);
          break;
        case 2:
          inflate_dynamic(&br, &output);
          break;
        default:
          bad("reserved DEFLATE block type");
      }
      if (bfinal) break;
    }
    br.align_to_byte();
    const unsigned char* trailer = br.bytes(8, "gzip trailer cut short");
    const std::uint32_t want_crc = read_le32(trailer);
    const std::uint32_t want_isize = read_le32(trailer + 4);
    const std::string_view produced(out->data() + output.start,
                                    out->size() - output.start);
    if (crc32(produced) != want_crc) bad("gzip CRC32 mismatch");
    if ((produced.size() & 0xFFFFFFFFu) != want_isize) {
      bad("gzip ISIZE mismatch");
    }
    return InflateResult{InflateStatus::kOk, {}, br.pos};
  } catch (const InflateError& error) {
    return InflateResult{error.status, error.detail, 0};
  }
}

std::string deflate_member(std::string_view input) {
  std::string out;
  // Header + rough worst case for incompressible data under fixed Huffman
  // (9 bits per literal) so typical members need no reallocation.
  out.reserve(20 + input.size() + input.size() / 8);
  const char header[10] = {'\x1f', '\x8b', '\x08', '\0', '\0',
                           '\0',   '\0',   '\0',   '\0', '\xff'};
  out.append(header, sizeof(header));
  BitWriter bw(&out);
  deflate_fixed_block(input, &bw);
  bw.finish();
  put_le32(&out, crc32(input));
  put_le32(&out, static_cast<std::uint32_t>(input.size() & 0xFFFFFFFFu));
  return out;
}

}  // namespace hv::archive::gzip
