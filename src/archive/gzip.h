// Dependency-free gzip (RFC 1952) / DEFLATE (RFC 1951) codec for per-record
// WARC members.
//
// Real Common Crawl archives store one gzip member per WARC record so that a
// CDX (offset, length) pair addresses a self-contained compressed frame. This
// header provides exactly what the archive layer needs to speak that format
// without an external zlib dependency:
//
//   * `inflate_member` — a strict, bounds-checked inflater for one member.
//     It accepts all three DEFLATE block types (stored, fixed Huffman,
//     dynamic Huffman) so real crawl data decodes, verifies the CRC32 and
//     ISIZE trailer, enforces a caller-supplied output cap, and never reads
//     or writes out of bounds regardless of input. Corruption is classified
//     as either *truncated* (the member ran out of input bytes; more input
//     might fix it) or *bad* (the bytes present are self-inconsistent), which
//     the WARC reader maps onto `ReadErrorKind::kTruncatedGzipMember` /
//     `kBadGzipMember`.
//
//   * `deflate_member` — a small fixed-Huffman-only compressor (greedy LZ77
//     over the full 32 KiB window) used by `WarcWriter`. It favours
//     simplicity over ratio; typical HTML records still shrink ~4-5x, and the
//     output is standard DEFLATE that any decoder (including ours) accepts.
//
// The inflater is deliberately paranoid: oversubscribed Huffman code sets,
// distances that reach before the start of the member, reserved header flag
// bits, and trailer mismatches are all hard errors. Untrusted archive bytes
// flow straight into this code (DESIGN.md section 17).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hv::archive::gzip {

/// Minimum byte count that can ever hold a gzip member: 10-byte header,
/// 2-byte empty fixed-Huffman block, 8-byte trailer.
inline constexpr std::size_t kMinMemberBytes = 20;

/// True when `bytes` begins with the gzip magic + DEFLATE method marker
/// (0x1f 0x8b 0x08). Three bytes instead of two keeps stray 0x1f 0x8b pairs
/// in binary payloads from being mistaken for member boundaries during
/// resync scans.
bool has_gzip_magic(std::string_view bytes);

enum class InflateStatus : std::uint8_t {
  kOk = 0,
  /// Input ended mid-member; retrying with more appended bytes may succeed.
  kTruncated,
  /// The bytes present are not a valid gzip member (bad header, corrupt
  /// Huffman data, CRC/ISIZE mismatch, output cap exceeded, ...).
  kBad,
};

struct InflateResult {
  InflateStatus status = InflateStatus::kOk;
  /// Human-readable cause when status != kOk (static or short string).
  std::string detail;
  /// Bytes of `input` consumed by the member, valid only when status == kOk.
  /// A concatenated stream continues at input.substr(consumed).
  std::size_t consumed = 0;
};

/// Decompresses exactly one gzip member from the front of `input`, appending
/// the decompressed bytes to `*out`. On failure `*out` may contain a partial
/// prefix of the member (callers should treat it as scratch). Decompressed
/// output beyond `max_output_bytes` fails with kBad ("output cap exceeded")
/// rather than allocating unboundedly.
InflateResult inflate_member(std::string_view input, std::string* out,
                             std::uint64_t max_output_bytes);

/// Compresses `input` into a single complete gzip member (fixed-Huffman
/// DEFLATE, MTIME=0, OS=unknown) and returns it. Deterministic: identical
/// input yields identical bytes, which the golden plain-vs-gzip study tests
/// rely on.
std::string deflate_member(std::string_view input);

/// CRC-32 (IEEE 802.3, reflected) of `bytes`, seeded with `seed` so runs can
/// be chained. Exposed for tests that hand-build members.
std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0);

}  // namespace hv::archive::gzip
