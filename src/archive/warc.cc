#include "archive/warc.h"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "net/http.h"
#include "obs/metrics.h"
#include "obs/prof.h"

namespace hv::archive {
namespace {

constexpr std::string_view kVersionLine = "WARC/1.0";

/// Pre-resolved handles into the default registry; one lookup per
/// process, relaxed atomics afterwards.
struct WarcMetrics {
  obs::Counter& records_written;
  obs::Counter& bytes_written;
  obs::Counter& records_read;
  obs::Counter& bytes_read;
  obs::Counter& seeks_performed;  ///< {skipped="false"}
  obs::Counter& seeks_skipped;    ///< {skipped="true"}
  obs::CounterFamily& read_errors;  ///< {kind}
  obs::Counter& resyncs;
  obs::Counter& resync_skipped_bytes;

  static WarcMetrics& get() {
    static WarcMetrics* const metrics = [] {
      obs::CounterFamily& seeks = obs::default_registry().counter_family(
          "hv_archive_warc_seeks_total",
          "WarcReader::seek calls, split by whether the redundant-seek "
          "optimization skipped the seekg",
          {"skipped"});
      return new WarcMetrics{
          obs::default_registry().counter(
              "hv_archive_warc_records_written_total",
              "WARC records written"),
          obs::default_registry().counter(
              "hv_archive_warc_bytes_written_total",
              "WARC bytes written (incl. framing)"),
          obs::default_registry().counter(
              "hv_archive_warc_records_read_total", "WARC records read"),
          obs::default_registry().counter(
              "hv_archive_warc_bytes_read_total",
              "WARC bytes read (incl. framing)"),
          seeks.with({"false"}), seeks.with({"true"}),
          obs::default_registry().counter_family(
              "hv_archive_read_errors_total",
              "Archive read-path rejections by ReadError kind",
              {"kind"}),
          obs::default_registry().counter(
              "hv_archive_warc_resyncs_total",
              "Boundary scans after a corrupt record"),
          obs::default_registry().counter(
              "hv_archive_warc_resync_skipped_bytes_total",
              "Bytes skipped while scanning for the next record "
              "boundary")};
    }();
    return *metrics;
  }
};

std::string read_line(std::istream& in, std::uint64_t& offset) {
  std::string line;
  if (!std::getline(in, line)) return line;
  offset += line.size() + 1;  // getline consumed the '\n'
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

}  // namespace

std::optional<std::string_view> WarcRecord::header(
    std::string_view name) const {
  for (const WarcHeader& header : extra_headers) {
    if (net::iequals(header.name, name)) {
      return std::string_view{header.value};
    }
  }
  return std::nullopt;
}

WarcWriter::WarcWriter(std::ostream& out) : out_(out) {}

std::uint64_t WarcWriter::write_record(const WarcRecord& record) {
  const std::uint64_t start = offset_;
  std::string head;
  head.append(kVersionLine);
  head.append("\r\n");
  head += "WARC-Type: " + record.type + "\r\n";
  head += "WARC-Record-ID: <urn:uuid:" + std::to_string(++record_counter_) +
          ">\r\n";
  if (!record.date.empty()) head += "WARC-Date: " + record.date + "\r\n";
  if (!record.target_uri.empty()) {
    head += "WARC-Target-URI: " + record.target_uri + "\r\n";
  }
  for (const WarcHeader& header : record.extra_headers) {
    head += header.name + ": " + header.value + "\r\n";
  }
  head += "Content-Length: " + std::to_string(record.payload.size()) +
          "\r\n\r\n";
  out_.write(head.data(), static_cast<std::streamsize>(head.size()));
  out_.write(record.payload.data(),
             static_cast<std::streamsize>(record.payload.size()));
  out_.write("\r\n\r\n", 4);
  offset_ += head.size() + record.payload.size() + 4;
  WarcMetrics::get().records_written.inc();
  WarcMetrics::get().bytes_written.inc(offset_ - start);
  return start;
}

void WarcWriter::write_warcinfo(std::string_view snapshot_label) {
  WarcRecord record;
  record.type = "warcinfo";
  record.extra_headers.push_back(
      {"Content-Type", "application/warc-fields"});
  record.payload = "software: hv-corpus/1.0\r\nisPartOf: ";
  record.payload.append(snapshot_label);
  record.payload.append("\r\nformat: WARC File Format 1.0\r\n");
  write_record(record);
}

std::uint64_t WarcWriter::write_response(std::string_view target_uri,
                                         std::string_view date,
                                         std::string_view http_message,
                                         std::uint64_t* length) {
  WarcRecord record;
  record.type = "response";
  record.target_uri.assign(target_uri);
  record.date.assign(date);
  record.extra_headers.push_back(
      {"Content-Type", "application/http; msgtype=response"});
  record.payload.assign(http_message);
  const std::uint64_t before = offset_;
  const std::uint64_t start = write_record(record);
  if (length != nullptr) *length = offset_ - before;
  return start;
}

WarcReader::WarcReader(std::istream& in) : in_(in) {
  // Size the stream once so Content-Length claims can be checked against
  // the bytes that actually exist.  Non-seekable streams (rare here) just
  // skip the pre-check and rely on the short-read detection.
  const std::streampos pos = in_.tellg();
  if (pos != std::streampos(-1)) {
    in_.seekg(0, std::ios::end);
    const std::streampos end = in_.tellg();
    if (end != std::streampos(-1)) {
      stream_size_ = static_cast<std::uint64_t>(end);
    }
    in_.clear();
    in_.seekg(pos);
  } else {
    in_.clear();
  }
}

void WarcReader::fail(ReadErrorKind kind, std::uint64_t offset,
                      std::string_view detail) {
  corrupt_ = true;
  WarcMetrics::get().read_errors.with({to_string(kind)}).inc();
  throw ReadError(kind, offset, detail);
}

void WarcReader::seek(std::uint64_t offset) {
  // Offset-sorted batch reads make most seeks land exactly where the
  // previous record ended; skipping the redundant seekg keeps the stream's
  // readahead buffer intact instead of discarding it.  A corrupt reader
  // (next() threw mid-record) never takes the shortcut: offset_ no longer
  // reflects the true stream position.
  if (offset == offset_ && !corrupt_ && in_.good()) {
    WarcMetrics::get().seeks_skipped.inc();
    return;
  }
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  offset_ = offset;
  corrupt_ = false;
  WarcMetrics::get().seeks_performed.inc();
}

std::optional<std::uint64_t> WarcReader::resync(std::uint64_t from_offset) {
  WarcMetrics::get().resyncs.inc();
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(from_offset));
  std::uint64_t cursor = from_offset;
  std::string line;
  while (true) {
    const std::uint64_t line_start = cursor;
    if (in_.peek() == std::char_traits<char>::eof()) break;
    line = read_line(in_, cursor);
    if (line.empty() && in_.eof()) break;
    if (line == kVersionLine) {
      // Rewind to the boundary so next() re-reads the version line.
      in_.clear();
      in_.seekg(static_cast<std::streamoff>(line_start));
      offset_ = line_start;
      corrupt_ = false;
      WarcMetrics::get().resync_skipped_bytes.inc(line_start - from_offset);
      return line_start;
    }
  }
  // No boundary left: park the reader at EOF so next() reports a clean
  // end instead of re-throwing on the same garbage.
  offset_ = cursor;
  corrupt_ = false;
  WarcMetrics::get().resync_skipped_bytes.inc(cursor - from_offset);
  return std::nullopt;
}

std::optional<WarcRecord> WarcReader::next() {
  HV_PROF_SCOPE("warc_read");
  std::uint64_t record_start = offset_;
  // Skip blank separator lines.
  std::string line;
  while (true) {
    if (in_.peek() == std::char_traits<char>::eof()) return std::nullopt;
    record_start = offset_;
    line = read_line(in_, offset_);
    if (!line.empty()) break;
    if (in_.eof()) return std::nullopt;
  }
  if (line != kVersionLine) {
    fail(ReadErrorKind::kBadVersionLine, record_start,
         "got \"" + line.substr(0, 32) + "\"");
  }
  WarcRecord record;
  std::uint64_t content_length = 0;
  bool have_length = false;
  while (true) {
    line = read_line(in_, offset_);
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      fail(ReadErrorKind::kMalformedHeader, record_start,
           "header without ':': \"" + line.substr(0, 32) + "\"");
    }
    std::string name = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (net::iequals(name, "WARC-Type")) {
      record.type = value;
    } else if (net::iequals(name, "WARC-Target-URI")) {
      record.target_uri = value;
    } else if (net::iequals(name, "WARC-Date")) {
      record.date = value;
    } else if (net::iequals(name, "Content-Length")) {
      // std::stoull here used to accept "123abc" and throw uncaught on
      // "abc"; the checked parser rejects both as typed errors.
      if (!parse_u64_digits(value, &content_length)) {
        fail(ReadErrorKind::kBadContentLength, record_start,
             "\"" + value.substr(0, 32) + "\"");
      }
      have_length = true;
    } else {
      record.extra_headers.push_back({std::move(name), std::move(value)});
    }
  }
  if (!have_length) {
    fail(ReadErrorKind::kMissingContentLength, record_start, {});
  }
  if (content_length > kMaxPayloadBytes) {
    fail(ReadErrorKind::kOversizedContentLength, record_start,
         std::to_string(content_length) + " > cap " +
             std::to_string(kMaxPayloadBytes));
  }
  // When the stream size is known, a length past EOF is truncation —
  // detected before allocating a payload buffer the bytes can't fill.
  if (stream_size_.has_value() &&
      content_length > *stream_size_ - std::min(*stream_size_, offset_)) {
    fail(ReadErrorKind::kTruncatedPayload, record_start,
         "length " + std::to_string(content_length) + " exceeds the " +
             std::to_string(*stream_size_ - std::min(*stream_size_, offset_)) +
             " bytes left in the stream");
  }
  record.payload.resize(static_cast<std::size_t>(content_length));
  in_.read(record.payload.data(),
           static_cast<std::streamsize>(content_length));
  if (static_cast<std::uint64_t>(in_.gcount()) != content_length) {
    fail(ReadErrorKind::kTruncatedPayload, record_start,
         "got " + std::to_string(in_.gcount()) + " of " +
             std::to_string(content_length) + " payload bytes");
  }
  offset_ += content_length;
  // Consume the record's trailing CRLFCRLF so `offset()` — and a
  // sequential `seek` over an offset-sorted batch — lands on the next
  // record's first byte instead of its separator.
  while (true) {
    const int next_char = in_.peek();
    if (next_char != '\r' && next_char != '\n') break;
    in_.get();
    ++offset_;
  }
  WarcMetrics::get().records_read.inc();
  WarcMetrics::get().bytes_read.inc(offset_ - record_start);
  return record;
}

}  // namespace hv::archive
