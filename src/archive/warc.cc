#include "archive/warc.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "archive/gzip.h"
#include "net/http.h"
#include "obs/metrics.h"
#include "obs/prof.h"

namespace hv::archive {
namespace {

constexpr std::string_view kVersionLine = "WARC/1.0";

/// Inflate cap for one gzip member: the payload cap plus headroom for the
/// record's own header block, so a legitimate maximal record still decodes
/// while a decompress bomb hits a hard ceiling.
constexpr std::uint64_t kMemberInflateCap =
    kMaxPayloadBytes + 64ull * 1024;

/// Pre-resolved handles into the default registry; one lookup per
/// process, relaxed atomics afterwards.
struct WarcMetrics {
  obs::Counter& records_written;
  obs::Counter& bytes_written;
  obs::Counter& records_read;
  obs::Counter& bytes_read;
  obs::Counter& seeks_performed;  ///< {skipped="false"}
  obs::Counter& seeks_skipped;    ///< {skipped="true"}
  obs::CounterFamily& read_errors;  ///< {kind}
  obs::Counter& resyncs;
  obs::Counter& resync_skipped_bytes;

  static WarcMetrics& get() {
    static WarcMetrics* const metrics = [] {
      obs::CounterFamily& seeks = obs::default_registry().counter_family(
          "hv_archive_warc_seeks_total",
          "WarcReader::seek calls, split by whether the redundant-seek "
          "optimization skipped the seekg",
          {"skipped"});
      return new WarcMetrics{
          obs::default_registry().counter(
              "hv_archive_warc_records_written_total",
              "WARC records written"),
          obs::default_registry().counter(
              "hv_archive_warc_bytes_written_total",
              "WARC bytes written (incl. framing)"),
          obs::default_registry().counter(
              "hv_archive_warc_records_read_total", "WARC records read"),
          obs::default_registry().counter(
              "hv_archive_warc_bytes_read_total",
              "WARC bytes read (incl. framing)"),
          seeks.with({"false"}), seeks.with({"true"}),
          obs::default_registry().counter_family(
              "hv_archive_read_errors_total",
              "Archive read-path rejections by ReadError kind",
              {"kind"}),
          obs::default_registry().counter(
              "hv_archive_warc_resyncs_total",
              "Boundary scans after a corrupt record"),
          obs::default_registry().counter(
              "hv_archive_warc_resync_skipped_bytes_total",
              "Bytes skipped while scanning for the next record "
              "boundary")};
    }();
    return *metrics;
  }
};

std::string read_line(std::istream& in, std::uint64_t& offset) {
  std::string line;
  if (!std::getline(in, line)) return line;
  offset += line.size() + 1;  // getline consumed the '\n'
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

/// Applies one "Name: value" header line to `record`, shared by the
/// streaming (plain) and in-memory (inflated member) record parsers so both
/// reject input with identical kinds and messages.  Returns the rejecting
/// kind and fills `*detail` on failure.
std::optional<ReadErrorKind> apply_header_line(std::string_view line,
                                               WarcRecord* record,
                                               std::uint64_t* content_length,
                                               bool* have_length,
                                               std::string* detail) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    *detail = "header without ':': \"";
    detail->append(line.substr(0, 32));
    detail->append("\"");
    return ReadErrorKind::kMalformedHeader;
  }
  std::string name(line.substr(0, colon));
  std::string value(line.substr(colon + 1));
  while (!value.empty() && value.front() == ' ') value.erase(0, 1);
  if (net::iequals(name, "WARC-Type")) {
    record->type = value;
  } else if (net::iequals(name, "WARC-Target-URI")) {
    record->target_uri = value;
  } else if (net::iequals(name, "WARC-Date")) {
    record->date = value;
  } else if (net::iequals(name, "Content-Length")) {
    // std::stoull here used to accept "123abc" and throw uncaught on
    // "abc"; the checked parser rejects both as typed errors.
    if (!parse_u64_digits(value, content_length)) {
      *detail = "\"" + value.substr(0, 32) + "\"";
      return ReadErrorKind::kBadContentLength;
    }
    *have_length = true;
  } else {
    record->extra_headers.push_back({std::move(name), std::move(value)});
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string_view> WarcRecord::header(
    std::string_view name) const {
  for (const WarcHeader& header : extra_headers) {
    if (net::iequals(header.name, name)) {
      return std::string_view{header.value};
    }
  }
  return std::nullopt;
}

WarcWriter::WarcWriter(std::ostream& out, WarcCompression compression)
    : out_(out), compression_(compression) {}

std::uint64_t WarcWriter::write_record(const WarcRecord& record) {
  const std::uint64_t start = offset_;
  std::string head;
  head.append(kVersionLine);
  head.append("\r\n");
  head += "WARC-Type: " + record.type + "\r\n";
  head += "WARC-Record-ID: <urn:uuid:" + std::to_string(++record_counter_) +
          ">\r\n";
  if (!record.date.empty()) head += "WARC-Date: " + record.date + "\r\n";
  if (!record.target_uri.empty()) {
    head += "WARC-Target-URI: " + record.target_uri + "\r\n";
  }
  for (const WarcHeader& header : record.extra_headers) {
    head += header.name + ": " + header.value + "\r\n";
  }
  head += "Content-Length: " + std::to_string(record.payload.size()) +
          "\r\n\r\n";
  if (compression_ == WarcCompression::kGzip) {
    // One self-contained member per record, Common Crawl's layout: the
    // returned offset and the advance of `offset_` both describe the
    // *compressed* stream, so CDX entries address the member directly.
    std::string text;
    text.reserve(head.size() + record.payload.size() + 4);
    text += head;
    text += record.payload;
    text += "\r\n\r\n";
    const std::string member = gzip::deflate_member(text);
    out_.write(member.data(), static_cast<std::streamsize>(member.size()));
    offset_ += member.size();
  } else {
    out_.write(head.data(), static_cast<std::streamsize>(head.size()));
    out_.write(record.payload.data(),
               static_cast<std::streamsize>(record.payload.size()));
    out_.write("\r\n\r\n", 4);
    offset_ += head.size() + record.payload.size() + 4;
  }
  WarcMetrics::get().records_written.inc();
  WarcMetrics::get().bytes_written.inc(offset_ - start);
  return start;
}

void WarcWriter::write_warcinfo(std::string_view snapshot_label) {
  WarcRecord record;
  record.type = "warcinfo";
  record.extra_headers.push_back(
      {"Content-Type", "application/warc-fields"});
  record.payload = "software: hv-corpus/1.0\r\nisPartOf: ";
  record.payload.append(snapshot_label);
  record.payload.append("\r\nformat: WARC File Format 1.0\r\n");
  write_record(record);
}

std::uint64_t WarcWriter::write_response(std::string_view target_uri,
                                         std::string_view date,
                                         std::string_view http_message,
                                         std::uint64_t* length) {
  WarcRecord record;
  record.type = "response";
  record.target_uri.assign(target_uri);
  record.date.assign(date);
  record.extra_headers.push_back(
      {"Content-Type", "application/http; msgtype=response"});
  record.payload.assign(http_message);
  const std::uint64_t before = offset_;
  const std::uint64_t start = write_record(record);
  if (length != nullptr) *length = offset_ - before;
  return start;
}

WarcReader::WarcReader(std::istream& in) : in_(in) {
  // Size the stream once so Content-Length claims can be checked against
  // the bytes that actually exist.  Non-seekable streams (rare here) just
  // skip the pre-check and rely on the short-read detection.
  const std::streampos pos = in_.tellg();
  if (pos != std::streampos(-1)) {
    in_.seekg(0, std::ios::end);
    const std::streampos end = in_.tellg();
    if (end != std::streampos(-1)) {
      stream_size_ = static_cast<std::uint64_t>(end);
    }
    in_.clear();
    in_.seekg(pos);
  } else {
    in_.clear();
  }
}

void WarcReader::fail(ReadErrorKind kind, std::uint64_t offset,
                      std::string_view detail) {
  corrupt_ = true;
  WarcMetrics::get().read_errors.with({to_string(kind)}).inc();
  throw ReadError(kind, offset, detail);
}

void WarcReader::seek(std::uint64_t offset) {
  // Offset-sorted batch reads make most seeks land exactly where the
  // previous record ended; skipping the redundant seekg keeps the stream's
  // readahead buffer intact instead of discarding it.  A corrupt reader
  // (next() threw mid-record) never takes the shortcut: offset_ no longer
  // reflects the true stream position.
  if (offset == offset_ && !corrupt_ && in_.good()) {
    WarcMetrics::get().seeks_skipped.inc();
    return;
  }
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  offset_ = offset;
  corrupt_ = false;
  WarcMetrics::get().seeks_performed.inc();
}

std::optional<std::uint64_t> WarcReader::resync(std::uint64_t from_offset) {
  WarcMetrics::get().resyncs.inc();
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(from_offset));
  // Overlapped chunked byte-scan for either boundary form: a "WARC/1.0"
  // line start (plain records) or the gzip member magic.  `buf` is a
  // sliding window whose first byte sits at stream offset `base`; chunks
  // overlap by the longest pattern so a boundary straddling a chunk edge
  // is still seen.
  constexpr std::size_t kChunk = 64 * 1024;
  constexpr std::size_t kTail = 10;  // "WARC/1.0\r\n"
  std::string buf;
  std::uint64_t base = from_offset;
  std::uint64_t scanned_end = from_offset;
  std::size_t scan_pos = 0;
  while (true) {
    const std::size_t old_size = buf.size();
    buf.resize(old_size + kChunk);
    in_.read(buf.data() + old_size, static_cast<std::streamsize>(kChunk));
    const auto got = static_cast<std::size_t>(in_.gcount());
    buf.resize(old_size + got);
    scanned_end += got;
    const bool at_eof = got < kChunk;
    const std::size_t limit =
        at_eof ? buf.size()
               : (buf.size() >= kTail ? buf.size() - kTail + 1 : 0);
    const std::string_view window(buf);
    for (std::size_t p = scan_pos; p < limit; ++p) {
      const std::uint64_t abs = base + p;
      bool hit = false;
      if (gzip::has_gzip_magic(window.substr(p))) {
        hit = true;
      } else if (abs == from_offset || buf[p - 1] == '\n') {
        // Candidate line start; must read exactly "WARC/1.0" + CR/LF (a
        // bare "WARC/1.0" at EOF also counts, matching the line reader).
        const std::string_view rest = window.substr(p);
        if (rest.substr(0, kVersionLine.size()) == kVersionLine) {
          if (rest.size() == kVersionLine.size()) {
            hit = at_eof;
          } else {
            const char after = rest[kVersionLine.size()];
            hit = after == '\r' || after == '\n';
          }
        }
      }
      if (hit) {
        // Rewind to the boundary so next() re-reads it from the stream.
        in_.clear();
        in_.seekg(static_cast<std::streamoff>(abs));
        offset_ = abs;
        corrupt_ = false;
        WarcMetrics::get().resync_skipped_bytes.inc(abs - from_offset);
        return abs;
      }
    }
    if (at_eof) break;
    // Slide: drop scanned bytes but keep one byte of context (for the
    // line-start check) plus the unscanned tail.
    const std::size_t keep_from = limit == 0 ? 0 : limit - 1;
    buf.erase(0, keep_from);
    base += keep_from;
    scan_pos = limit - keep_from;
  }
  // No boundary left: park the reader at EOF so next() reports a clean
  // end instead of re-throwing on the same garbage.
  offset_ = scanned_end;
  corrupt_ = false;
  WarcMetrics::get().resync_skipped_bytes.inc(scanned_end - from_offset);
  return std::nullopt;
}

std::optional<WarcRecord> WarcReader::next() {
  HV_PROF_SCOPE("warc_read");
  // Skip blank separator bytes between records.  (Byte-wise rather than
  // line-wise: the next record may be a binary gzip member, not a line.)
  while (true) {
    const int next_char = in_.peek();
    if (next_char == std::char_traits<char>::eof()) return std::nullopt;
    if (next_char != '\r' && next_char != '\n') break;
    in_.get();
    ++offset_;
  }
  const std::uint64_t record_start = offset_;
  if (in_.peek() == 0x1f) {
    // Gzip member framing, detected per record so mixed archives work.
    WarcRecord record = next_gzip_record(record_start);
    WarcMetrics::get().records_read.inc();
    WarcMetrics::get().bytes_read.inc(offset_ - record_start);
    return record;
  }
  std::string line = read_line(in_, offset_);
  if (line != kVersionLine) {
    fail(ReadErrorKind::kBadVersionLine, record_start,
         "got \"" + line.substr(0, 32) + "\"");
  }
  WarcRecord record;
  std::uint64_t content_length = 0;
  bool have_length = false;
  while (true) {
    line = read_line(in_, offset_);
    if (line.empty()) break;
    std::string detail;
    if (const auto kind = apply_header_line(line, &record, &content_length,
                                            &have_length, &detail)) {
      fail(*kind, record_start, detail);
    }
  }
  if (!have_length) {
    fail(ReadErrorKind::kMissingContentLength, record_start, {});
  }
  if (content_length > kMaxPayloadBytes) {
    fail(ReadErrorKind::kOversizedContentLength, record_start,
         std::to_string(content_length) + " > cap " +
             std::to_string(kMaxPayloadBytes));
  }
  // When the stream size is known, a length past EOF is truncation —
  // detected before allocating a payload buffer the bytes can't fill.
  if (stream_size_.has_value() &&
      content_length > *stream_size_ - std::min(*stream_size_, offset_)) {
    fail(ReadErrorKind::kTruncatedPayload, record_start,
         "length " + std::to_string(content_length) + " exceeds the " +
             std::to_string(*stream_size_ - std::min(*stream_size_, offset_)) +
             " bytes left in the stream");
  }
  record.payload.resize(static_cast<std::size_t>(content_length));
  in_.read(record.payload.data(),
           static_cast<std::streamsize>(content_length));
  if (static_cast<std::uint64_t>(in_.gcount()) != content_length) {
    fail(ReadErrorKind::kTruncatedPayload, record_start,
         "got " + std::to_string(in_.gcount()) + " of " +
             std::to_string(content_length) + " payload bytes");
  }
  offset_ += content_length;
  // Consume the record's trailing CRLFCRLF so `offset()` — and a
  // sequential `seek` over an offset-sorted batch — lands on the next
  // record's first byte instead of its separator.
  while (true) {
    const int next_char = in_.peek();
    if (next_char != '\r' && next_char != '\n') break;
    in_.get();
    ++offset_;
  }
  WarcMetrics::get().records_read.inc();
  WarcMetrics::get().bytes_read.inc(offset_ - record_start);
  return record;
}

WarcRecord WarcReader::next_gzip_record(std::uint64_t record_start) {
  // Accumulate compressed bytes in readahead chunks until a whole member
  // inflates; the member length isn't known up front (CDX callers seek to
  // the offset but the reader stays self-describing).  Most members fit in
  // the first chunk, so the retry loop is cold.
  constexpr std::size_t kChunk = 64 * 1024;
  member_buf_.clear();
  gzip::InflateResult result;
  while (true) {
    const std::size_t old_size = member_buf_.size();
    member_buf_.resize(old_size + kChunk);
    in_.read(member_buf_.data() + old_size,
             static_cast<std::streamsize>(kChunk));
    const auto got = static_cast<std::size_t>(in_.gcount());
    member_buf_.resize(old_size + got);
    const bool no_more = got < kChunk;
    inflate_buf_.clear();
    result = gzip::inflate_member(member_buf_, &inflate_buf_,
                                  kMemberInflateCap);
    if (result.status == gzip::InflateStatus::kOk) break;
    if (result.status == gzip::InflateStatus::kBad) {
      fail(ReadErrorKind::kBadGzipMember, record_start, result.detail);
    }
    if (no_more) {
      fail(ReadErrorKind::kTruncatedGzipMember, record_start, result.detail);
    }
  }
  // Reposition at the first byte after the member: bytes past `consumed`
  // were readahead belonging to the next record.  (Requires a seekable
  // stream, which every archive source here is.)
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(record_start + result.consumed));
  offset_ = record_start + result.consumed;
  return parse_record_text(inflate_buf_, record_start);
}

WarcRecord WarcReader::parse_record_text(std::string_view text,
                                         std::uint64_t report_offset) {
  std::size_t pos = 0;
  bool saw_line = false;
  auto next_line = [&]() -> std::string_view {
    if (pos >= text.size()) {
      saw_line = false;
      return {};
    }
    saw_line = true;
    const std::size_t eol = text.find('\n', pos);
    std::string_view line;
    if (eol == std::string_view::npos) {
      line = text.substr(pos);
      pos = text.size();
    } else {
      line = text.substr(pos, eol - pos);
      pos = eol + 1;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    return line;
  };

  std::string_view line = next_line();
  if (!saw_line || line != kVersionLine) {
    fail(ReadErrorKind::kBadVersionLine, report_offset,
         "got \"" + std::string(line.substr(0, 32)) + "\"");
  }
  WarcRecord record;
  std::uint64_t content_length = 0;
  bool have_length = false;
  while (true) {
    line = next_line();
    if (!saw_line) {
      fail(ReadErrorKind::kMalformedHeader, report_offset,
           "member ends inside the header block");
    }
    if (line.empty()) break;
    std::string detail;
    if (const auto kind = apply_header_line(line, &record, &content_length,
                                            &have_length, &detail)) {
      fail(*kind, report_offset, detail);
    }
  }
  if (!have_length) {
    fail(ReadErrorKind::kMissingContentLength, report_offset, {});
  }
  if (content_length > kMaxPayloadBytes) {
    fail(ReadErrorKind::kOversizedContentLength, report_offset,
         std::to_string(content_length) + " > cap " +
             std::to_string(kMaxPayloadBytes));
  }
  const std::uint64_t remaining = text.size() - pos;
  if (content_length > remaining) {
    fail(ReadErrorKind::kTruncatedPayload, report_offset,
         "length " + std::to_string(content_length) + " exceeds the " +
             std::to_string(remaining) + " bytes left in the member");
  }
  record.payload.assign(
      text.substr(pos, static_cast<std::size_t>(content_length)));
  return record;
}

}  // namespace hv::archive
