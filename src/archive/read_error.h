// Typed error taxonomy for the archive read path (WARC framing + CDX
// index).  At Common Crawl scale, truncated records, garbage headers, and
// malformed lengths are routine inputs, not exceptional ones — the crawl
// workers catch ReadError per capture, quarantine the record, and keep
// going (DESIGN.md section 12), so the kind has to be programmatically
// inspectable instead of buried in a what() string.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hv::archive {

/// Every distinct way the archive read path can reject input.  Keep in
/// sync with kReadErrorKindCount and to_string(); the names double as the
/// `kind` label of hv_archive_read_errors_total and the quarantine
/// counters.
enum class ReadErrorKind : std::uint8_t {
  kBadVersionLine = 0,   ///< record does not start with "WARC/1.0"
  kMalformedHeader,      ///< header line without a ':' separator
  kBadContentLength,     ///< non-digit / overflowing Content-Length value
  kOversizedContentLength,  ///< length beyond the sanity cap
  kMissingContentLength,    ///< record header block without Content-Length
  kTruncatedPayload,     ///< payload extends past the end of the stream
  kCdxParse,             ///< malformed CDX index line
  kBadGzipMember,        ///< gzip member with corrupt header/Huffman/CRC data
  kTruncatedGzipMember,  ///< gzip member cut off by the end of the stream
};

inline constexpr std::size_t kReadErrorKindCount = 9;

/// Stable kebab-case name ("bad-version-line", ...), used as a metric
/// label and in diagnostics.
std::string_view to_string(ReadErrorKind kind) noexcept;

/// Thrown by WarcReader / CdxIndex on malformed input.  Derives from
/// std::runtime_error so pre-taxonomy catch sites keep working; new code
/// should catch ReadError and dispatch on kind().
class ReadError : public std::runtime_error {
 public:
  /// `offset` is the byte offset of the offending record for WARC errors
  /// and the 1-based line number for kCdxParse.
  ReadError(ReadErrorKind kind, std::uint64_t offset, std::string_view detail);

  ReadErrorKind kind() const noexcept { return kind_; }
  std::uint64_t offset() const noexcept { return offset_; }

 private:
  ReadErrorKind kind_;
  std::uint64_t offset_;
};

/// Strict decimal parser shared by the WARC and CDX readers: digits only
/// (no sign, no whitespace, no trailing garbage — std::stoull accepted
/// "123abc"), overflow-checked.  Returns false on any deviation.
bool parse_u64_digits(std::string_view text, std::uint64_t* value) noexcept;

}  // namespace hv::archive
