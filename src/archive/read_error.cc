#include "archive/read_error.h"

namespace hv::archive {
namespace {

std::string build_message(ReadErrorKind kind, std::uint64_t offset,
                          std::string_view detail) {
  std::string message;
  message.reserve(64 + detail.size());
  message.append(kind == ReadErrorKind::kCdxParse ? "CDX: " : "WARC: ");
  message.append(to_string(kind));
  message.append(kind == ReadErrorKind::kCdxParse ? " at line "
                                                  : " at offset ");
  message.append(std::to_string(offset));
  if (!detail.empty()) {
    message.append(": ");
    message.append(detail);
  }
  return message;
}

}  // namespace

std::string_view to_string(ReadErrorKind kind) noexcept {
  switch (kind) {
    case ReadErrorKind::kBadVersionLine:
      return "bad-version-line";
    case ReadErrorKind::kMalformedHeader:
      return "malformed-header";
    case ReadErrorKind::kBadContentLength:
      return "bad-content-length";
    case ReadErrorKind::kOversizedContentLength:
      return "oversized-content-length";
    case ReadErrorKind::kMissingContentLength:
      return "missing-content-length";
    case ReadErrorKind::kTruncatedPayload:
      return "truncated-payload";
    case ReadErrorKind::kCdxParse:
      return "cdx-parse";
    case ReadErrorKind::kBadGzipMember:
      return "bad-gzip-member";
    case ReadErrorKind::kTruncatedGzipMember:
      return "truncated-gzip-member";
  }
  return "unknown";
}

ReadError::ReadError(ReadErrorKind kind, std::uint64_t offset,
                     std::string_view detail)
    : std::runtime_error(build_message(kind, offset, detail)),
      kind_(kind),
      offset_(offset) {}

bool parse_u64_digits(std::string_view text, std::uint64_t* value) noexcept {
  if (text.empty()) return false;
  std::uint64_t result = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (result > (UINT64_MAX - digit) / 10) return false;  // overflow
    result = result * 10 + digit;
  }
  *value = result;
  return true;
}

}  // namespace hv::archive
