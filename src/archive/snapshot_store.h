// Snapshot catalog + CDX-style index over WARC files — the "Common Crawl"
// the framework queries: per snapshot, the index answers "which captures
// exist for domain X?" (the paper's step 1, metadata collection) and the
// WARC file serves the payload bytes (step 2, crawling).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hv::archive {

/// One capture in the index (a simplified CDX line).
struct CdxEntry {
  std::string domain;  ///< eTLD+1 key (the paper aggregates per domain)
  std::string url;
  std::string content_type;
  std::uint64_t offset = 0;  ///< WARC record offset
  std::uint64_t length = 0;  ///< WARC record length
};

/// In-memory CDX index with CSV persistence next to the WARC file.
class CdxIndex {
 public:
  void add(CdxEntry entry);
  /// All captures for a domain, insertion-ordered, capped at `limit`
  /// (the paper stores "up to 100 pages per domain").
  std::vector<const CdxEntry*> lookup(std::string_view domain,
                                      std::size_t limit = 100) const;
  const std::vector<CdxEntry>& entries() const noexcept { return entries_; }
  std::vector<std::string> domains() const;

  void save(const std::filesystem::path& path) const;

  /// Loads the index, memory-mapping the file when the platform allows it
  /// (zero-copy line scan over the mapped bytes — no per-line getline copy,
  /// and the kernel page cache is shared across workers).  Falls back to
  /// load_stream() when mmap is unavailable (HV_NO_MMAP builds), disabled
  /// at runtime (non-empty HV_CDX_NO_MMAP env var), or the map fails.
  /// Both paths reject malformed lines with identical ReadError kinds,
  /// line numbers, and messages.
  static CdxIndex load(const std::filesystem::path& path);

  /// Portable istream loader — the mmap fallback.  Public so tests and
  /// tooling can pin mmap-vs-stream equivalence directly.
  static CdxIndex load_stream(const std::filesystem::path& path);

  /// Parses CDX lines from an in-memory buffer (the mmap path's core).
  static CdxIndex load_view(std::string_view text);

 private:
  std::vector<CdxEntry> entries_;
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_domain_;
};

/// One snapshot on disk: <root>/<label>/segment.warc (plain records) or
/// segment.warc.gz (one gzip member per record) + index.cdx.  The CDX
/// offsets always address the on-disk byte stream, so both layouts are
/// range-readable with the same index format.
struct SnapshotPaths {
  std::filesystem::path warc;
  std::filesystem::path cdx;
};

/// Directory layout manager for the snapshot archive.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::filesystem::path root);

  /// Resolves the snapshot's file paths, preferring an existing plain
  /// segment.warc and falling back to segment.warc.gz when only the
  /// compressed layout is present.
  SnapshotPaths paths_for(std::string_view snapshot_label) const;
  /// Creates the snapshot directory and returns the file paths for the
  /// requested layout (plain by default, .warc.gz when `gzip` is set).
  SnapshotPaths create(std::string_view snapshot_label,
                       bool gzip = false) const;
  bool exists(std::string_view snapshot_label) const;

  const std::filesystem::path& root() const noexcept { return root_; }

 private:
  std::filesystem::path root_;
};

}  // namespace hv::archive
