#include "archive/snapshot_store.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "archive/read_error.h"
#include "obs/metrics.h"

namespace hv::archive {
namespace {

/// CSV escaping is unnecessary: domains/urls in the corpus contain no
/// commas; content types may, so they are written last and read greedily.
constexpr char kSep = ',';

obs::Histogram& cdx_lookup_seconds() {
  static obs::Histogram* const histogram =
      &obs::default_registry().histogram("hv_archive_cdx_lookup_seconds",
                                         "CDX per-domain lookup latency",
                                         obs::default_time_buckets());
  return *histogram;
}

}  // namespace

void CdxIndex::add(CdxEntry entry) {
  by_domain_[entry.domain].push_back(entries_.size());
  entries_.push_back(std::move(entry));
}

std::vector<const CdxEntry*> CdxIndex::lookup(std::string_view domain,
                                              std::size_t limit) const {
  const obs::ScopedTimer timer(cdx_lookup_seconds());
  std::vector<const CdxEntry*> result;
  const auto it = by_domain_.find(domain);
  if (it == by_domain_.end()) return result;
  for (const std::size_t index : it->second) {
    if (result.size() >= limit) break;
    result.push_back(&entries_[index]);
  }
  return result;
}

std::vector<std::string> CdxIndex::domains() const {
  std::vector<std::string> result;
  result.reserve(by_domain_.size());
  for (const auto& [domain, indices] : by_domain_) {
    result.push_back(domain);
  }
  return result;
}

void CdxIndex::save(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot write CDX index: " + path.string());
  }
  for (const CdxEntry& entry : entries_) {
    out << entry.domain << kSep << entry.url << kSep << entry.offset << kSep
        << entry.length << kSep << entry.content_type << '\n';
  }
}

CdxIndex CdxIndex::load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read CDX index: " + path.string());
  }
  CdxIndex index;
  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    CdxEntry entry;
    std::size_t pos = 0;
    const auto take = [&line, &pos, line_number]() {
      const std::size_t comma = line.find(kSep, pos);
      if (comma == std::string::npos) {
        throw ReadError(ReadErrorKind::kCdxParse, line_number,
                        "expected 5 fields, line is \"" + line.substr(0, 64) +
                            "\"");
      }
      std::string field = line.substr(pos, comma - pos);
      pos = comma + 1;
      return field;
    };
    entry.domain = take();
    entry.url = take();
    // std::stoull here used to throw std::invalid_argument with no line
    // context; the checked parser turns a corrupt index line into a typed
    // error naming the line.
    const std::string offset_field = take();
    if (!parse_u64_digits(offset_field, &entry.offset)) {
      throw ReadError(ReadErrorKind::kCdxParse, line_number,
                      "bad offset \"" + offset_field.substr(0, 32) + "\"");
    }
    const std::string length_field = take();
    if (!parse_u64_digits(length_field, &entry.length)) {
      throw ReadError(ReadErrorKind::kCdxParse, line_number,
                      "bad length \"" + length_field.substr(0, 32) + "\"");
    }
    entry.content_type = line.substr(pos);  // greedy: may contain commas
    index.add(std::move(entry));
  }
  return index;
}

SnapshotStore::SnapshotStore(std::filesystem::path root)
    : root_(std::move(root)) {}

SnapshotPaths SnapshotStore::paths_for(std::string_view snapshot_label) const {
  const std::filesystem::path dir = root_ / snapshot_label;
  return {dir / "segment.warc", dir / "index.cdx"};
}

SnapshotPaths SnapshotStore::create(std::string_view snapshot_label) const {
  const std::filesystem::path dir = root_ / snapshot_label;
  std::filesystem::create_directories(dir);
  return paths_for(snapshot_label);
}

bool SnapshotStore::exists(std::string_view snapshot_label) const {
  const SnapshotPaths paths = paths_for(snapshot_label);
  return std::filesystem::exists(paths.warc) &&
         std::filesystem::exists(paths.cdx);
}

}  // namespace hv::archive
