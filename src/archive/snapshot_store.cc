#include "archive/snapshot_store.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "archive/read_error.h"
#include "obs/metrics.h"

#if !defined(HV_NO_MMAP) && (defined(__unix__) || defined(__APPLE__))
#define HV_CDX_MMAP_AVAILABLE 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace hv::archive {
namespace {

/// CSV escaping is unnecessary: domains/urls in the corpus contain no
/// commas; content types may, so they are written last and read greedily.
constexpr char kSep = ',';

obs::Histogram& cdx_lookup_seconds() {
  static obs::Histogram* const histogram =
      &obs::default_registry().histogram("hv_archive_cdx_lookup_seconds",
                                         "CDX per-domain lookup latency",
                                         obs::default_time_buckets());
  return *histogram;
}

obs::CounterFamily& cdx_loads() {
  static obs::CounterFamily* const family =
      &obs::default_registry().counter_family(
          "hv_archive_cdx_load_total",
          "CDX index loads, split by backing read path",
          {"backend"});
  return *family;
}

/// Parses one CDX CSV line.  Shared by the mmap and istream loaders so
/// both reject malformed input with byte-identical ReadError messages.
CdxEntry parse_cdx_line(std::string_view line, std::uint64_t line_number) {
  std::size_t pos = 0;
  const auto take = [&line, &pos, line_number]() -> std::string_view {
    const std::size_t comma = line.find(kSep, pos);
    if (comma == std::string_view::npos) {
      throw ReadError(ReadErrorKind::kCdxParse, line_number,
                      "expected 5 fields, line is \"" +
                          std::string(line.substr(0, 64)) + "\"");
    }
    const std::string_view field = line.substr(pos, comma - pos);
    pos = comma + 1;
    return field;
  };
  CdxEntry entry;
  entry.domain.assign(take());
  entry.url.assign(take());
  // std::stoull here used to throw std::invalid_argument with no line
  // context; the checked parser turns a corrupt index line into a typed
  // error naming the line.
  const std::string_view offset_field = take();
  if (!parse_u64_digits(offset_field, &entry.offset)) {
    throw ReadError(ReadErrorKind::kCdxParse, line_number,
                    "bad offset \"" + std::string(offset_field.substr(0, 32)) +
                        "\"");
  }
  const std::string_view length_field = take();
  if (!parse_u64_digits(length_field, &entry.length)) {
    throw ReadError(ReadErrorKind::kCdxParse, line_number,
                    "bad length \"" + std::string(length_field.substr(0, 32)) +
                        "\"");
  }
  entry.content_type.assign(line.substr(pos));  // greedy: may contain commas
  return entry;
}

#ifdef HV_CDX_MMAP_AVAILABLE

/// RAII read-only mapping of a whole file.  `open` returns nullopt on any
/// failure (missing file, not a regular file, mmap refusal) so the caller
/// can fall back to the istream path with its usual error reporting.
class MappedFile {
 public:
  static std::optional<MappedFile> open(const std::filesystem::path& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return std::nullopt;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
      ::close(fd);
      return std::nullopt;
    }
    if (st.st_size == 0) {
      ::close(fd);
      return MappedFile(nullptr, 0);  // empty index: nothing to map
    }
    void* data = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                        PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping holds its own reference
    if (data == MAP_FAILED) return std::nullopt;
    return MappedFile(data, static_cast<std::size_t>(st.st_size));
  }

  MappedFile(MappedFile&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  MappedFile& operator=(MappedFile&&) = delete;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  ~MappedFile() {
    if (data_ != nullptr) ::munmap(data_, size_);
  }

  std::string_view view() const {
    return {static_cast<const char*>(data_), size_};
  }

 private:
  MappedFile(void* data, std::size_t size) : data_(data), size_(size) {}

  void* data_;
  std::size_t size_;
};

bool mmap_disabled_by_env() {
  const char* value = std::getenv("HV_CDX_NO_MMAP");
  return value != nullptr && *value != '\0';
}

#endif  // HV_CDX_MMAP_AVAILABLE

}  // namespace

void CdxIndex::add(CdxEntry entry) {
  by_domain_[entry.domain].push_back(entries_.size());
  entries_.push_back(std::move(entry));
}

std::vector<const CdxEntry*> CdxIndex::lookup(std::string_view domain,
                                              std::size_t limit) const {
  const obs::ScopedTimer timer(cdx_lookup_seconds());
  std::vector<const CdxEntry*> result;
  const auto it = by_domain_.find(domain);
  if (it == by_domain_.end()) return result;
  for (const std::size_t index : it->second) {
    if (result.size() >= limit) break;
    result.push_back(&entries_[index]);
  }
  return result;
}

std::vector<std::string> CdxIndex::domains() const {
  std::vector<std::string> result;
  result.reserve(by_domain_.size());
  for (const auto& [domain, indices] : by_domain_) {
    result.push_back(domain);
  }
  return result;
}

void CdxIndex::save(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot write CDX index: " + path.string());
  }
  for (const CdxEntry& entry : entries_) {
    out << entry.domain << kSep << entry.url << kSep << entry.offset << kSep
        << entry.length << kSep << entry.content_type << '\n';
  }
}

CdxIndex CdxIndex::load(const std::filesystem::path& path) {
#ifdef HV_CDX_MMAP_AVAILABLE
  if (!mmap_disabled_by_env()) {
    if (auto mapped = MappedFile::open(path)) {
      cdx_loads().with({"mmap"}).inc();
      return load_view(mapped->view());
    }
  }
#endif
  return load_stream(path);
}

CdxIndex CdxIndex::load_stream(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read CDX index: " + path.string());
  }
  cdx_loads().with({"stream"}).inc();
  CdxIndex index;
  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    index.add(parse_cdx_line(line, line_number));
  }
  return index;
}

CdxIndex CdxIndex::load_view(std::string_view text) {
  CdxIndex index;
  std::uint64_t line_number = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line;
    if (eol == std::string_view::npos) {
      line = text.substr(pos);
      pos = text.size();
    } else {
      line = text.substr(pos, eol - pos);
      pos = eol + 1;
    }
    ++line_number;
    if (line.empty()) continue;
    index.add(parse_cdx_line(line, line_number));
  }
  return index;
}

SnapshotStore::SnapshotStore(std::filesystem::path root)
    : root_(std::move(root)) {}

SnapshotPaths SnapshotStore::paths_for(std::string_view snapshot_label) const {
  const std::filesystem::path dir = root_ / snapshot_label;
  std::filesystem::path warc = dir / "segment.warc";
  // Prefer the plain layout when present (backwards compatible); resolve
  // to the compressed one when the snapshot was built with --gzip.
  std::error_code ec;
  if (!std::filesystem::exists(warc, ec)) {
    std::filesystem::path gz = dir / "segment.warc.gz";
    if (std::filesystem::exists(gz, ec)) warc = std::move(gz);
  }
  return {std::move(warc), dir / "index.cdx"};
}

SnapshotPaths SnapshotStore::create(std::string_view snapshot_label,
                                    bool gzip) const {
  const std::filesystem::path dir = root_ / snapshot_label;
  std::filesystem::create_directories(dir);
  return {dir / (gzip ? "segment.warc.gz" : "segment.warc"),
          dir / "index.cdx"};
}

bool SnapshotStore::exists(std::string_view snapshot_label) const {
  const SnapshotPaths paths = paths_for(snapshot_label);
  return std::filesystem::exists(paths.warc) &&
         std::filesystem::exists(paths.cdx);
}

}  // namespace hv::archive
