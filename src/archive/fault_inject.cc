#include "archive/fault_inject.h"

#include <algorithm>
#include <stdexcept>

#include "archive/gzip.h"
#include "archive/warc.h"

namespace hv::archive {
namespace {

constexpr std::string_view kVersionLine = "WARC/1.0";

/// SplitMix64 — tiny, deterministic, and good enough for fault selection;
/// keeps hv_archive free of a dependency on hv_corpus's RNG.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

double uniform01(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Byte-level structure of one record, with the absolute positions the
/// mutations need.
struct RecordSpan {
  std::uint64_t offset = 0;  ///< record start (the 'W' of WARC/1.0)
  std::string type;
  std::string target_uri;
  std::size_t first_header_colon = 0;  ///< abs index of the first ':'
  std::size_t length_value_start = 0;  ///< abs index of the CL digits
  std::size_t length_value_size = 0;
  std::size_t payload_start = 0;
  std::uint64_t payload_size = 0;
};

[[noreturn]] void malformed(std::size_t at, const std::string& what) {
  throw std::runtime_error("inject_faults: input is not well-formed WARC (" +
                           what + " at byte " + std::to_string(at) + ")");
}

/// Reads one line ending at '\n'; returns it without the terminator and
/// with a trailing '\r' stripped, advancing `pos` past the '\n'.
std::string_view scan_line(std::string_view bytes, std::size_t& pos) {
  const std::size_t start = pos;
  const std::size_t newline = bytes.find('\n', pos);
  if (newline == std::string_view::npos) malformed(start, "unterminated line");
  pos = newline + 1;
  std::string_view line = bytes.substr(start, newline - start);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

std::vector<RecordSpan> scan_records(std::string_view bytes) {
  std::vector<RecordSpan> records;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes[pos] == '\r' || bytes[pos] == '\n') {
      ++pos;
      continue;
    }
    RecordSpan record;
    record.offset = pos;
    if (scan_line(bytes, pos) != kVersionLine) {
      malformed(record.offset, "missing WARC/1.0 version line");
    }
    bool have_length = false;
    bool first_header = true;
    while (true) {
      const std::size_t line_start = pos;
      const std::string_view line = scan_line(bytes, pos);
      if (line.empty()) break;
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        malformed(line_start, "header without ':'");
      }
      if (first_header) {
        record.first_header_colon = line_start + colon;
        first_header = false;
      }
      std::string_view name = line.substr(0, colon);
      std::size_t value_off = colon + 1;
      while (value_off < line.size() && line[value_off] == ' ') ++value_off;
      const std::string_view value = line.substr(value_off);
      if (name == "WARC-Type") {
        record.type.assign(value);
      } else if (name == "WARC-Target-URI") {
        record.target_uri.assign(value);
      } else if (name == "Content-Length") {
        record.length_value_start = line_start + value_off;
        record.length_value_size = value.size();
        std::uint64_t parsed = 0;
        for (const char c : value) {
          if (c < '0' || c > '9') malformed(line_start, "bad Content-Length");
          parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
        }
        record.payload_size = parsed;
        have_length = true;
      }
    }
    if (!have_length) malformed(record.offset, "missing Content-Length");
    record.payload_start = pos;
    if (record.payload_size > bytes.size() - pos) {
      malformed(record.offset, "payload past EOF");
    }
    pos += static_cast<std::size_t>(record.payload_size);
    records.push_back(std::move(record));
  }
  return records;
}

void apply_fault(std::string* bytes, const RecordSpan& record,
                 FaultKind kind) {
  switch (kind) {
    case FaultKind::kVersionBitFlip:
      // 'W' -> 'w': a single-bit flip in the version line.
      (*bytes)[static_cast<std::size_t>(record.offset)] ^= 0x20;
      break;
    case FaultKind::kHeaderGarbage:
      // The first header is "WARC-Type: ...", whose only ':' is the
      // separator — overwriting it leaves a line with no colon at all.
      (*bytes)[record.first_header_colon] = '#';
      break;
    case FaultKind::kLengthRewrite:
      if (record.length_value_size >= 10) {
        // All-nines at >= 10 digits clears the 256 MiB sanity cap.
        for (std::size_t i = 0; i < record.length_value_size; ++i) {
          (*bytes)[record.length_value_start + i] = '9';
        }
      } else {
        // A trailing non-digit: std::stoull would have accepted this.
        (*bytes)[record.length_value_start + record.length_value_size - 1] =
            'x';
      }
      break;
    case FaultKind::kTruncateTail:
      bytes->resize(record.payload_start +
                    static_cast<std::size_t>(record.payload_size) / 2);
      break;
  }
}

/// Byte-level structure of one gzip member (.warc.gz framing).
struct MemberSpan {
  std::uint64_t offset = 0;  ///< member start (matches the CDX offset)
  std::size_t size = 0;      ///< compressed on-disk bytes
  std::string type;
  std::string target_uri;
};

/// Decodes each member in turn to find its compressed span and the record
/// headers inside it; malformed input is rejected just like the plain
/// scanner rejects broken framing.
std::vector<MemberSpan> scan_members(std::string_view bytes) {
  std::vector<MemberSpan> members;
  std::size_t pos = 0;
  std::string text;
  while (pos < bytes.size()) {
    if (!gzip::has_gzip_magic(bytes.substr(pos))) {
      malformed(pos, "missing gzip member magic");
    }
    text.clear();
    const gzip::InflateResult result = gzip::inflate_member(
        bytes.substr(pos), &text, kMaxPayloadBytes + 64ull * 1024);
    if (result.status != gzip::InflateStatus::kOk) {
      malformed(pos, "gzip member does not decode: " + result.detail);
    }
    MemberSpan member;
    member.offset = pos;
    member.size = result.consumed;
    // Light header scan of the decompressed record for type + target URI.
    std::size_t text_pos = 0;
    if (scan_line(text, text_pos) != kVersionLine) {
      malformed(pos, "member does not contain a WARC/1.0 record");
    }
    while (true) {
      const std::string_view line = scan_line(text, text_pos);
      if (line.empty()) break;
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        malformed(pos, "header without ':'");
      }
      const std::string_view name = line.substr(0, colon);
      std::size_t value_off = colon + 1;
      while (value_off < line.size() && line[value_off] == ' ') ++value_off;
      if (name == "WARC-Type") {
        member.type.assign(line.substr(value_off));
      } else if (name == "WARC-Target-URI") {
        member.target_uri.assign(line.substr(value_off));
      }
    }
    pos += result.consumed;
    members.push_back(std::move(member));
  }
  return members;
}

FaultPlan inject_gzip_faults(std::string* bytes,
                             const FaultInjectConfig& config) {
  const std::vector<MemberSpan> members = scan_members(*bytes);
  FaultPlan plan;
  std::uint64_t rng = config.seed;
  const MemberSpan* last_response = nullptr;
  for (const MemberSpan& member : members) {
    if (member.type == "response") last_response = &member;
  }
  for (const MemberSpan& member : members) {
    if (member.type != "response") continue;
    ++plan.response_records;
    if (config.truncate_tail && &member == last_response) continue;
    if (uniform01(rng) >= config.rate) continue;
    // Flip one bit inside the member's DEFLATE body (length-preserving, so
    // every other CDX offset stays valid).  The final body byte is
    // excluded: its high bits can be post-final-block padding that no
    // check observes.  Everything else is covered — if the flipped stream
    // still decodes, the CRC32 trailer catches the changed output.
    const std::size_t body_range =
        std::max<std::size_t>(1, member.size - 19);  // header 10 + trailer 8
    const std::size_t at = static_cast<std::size_t>(member.offset) + 10 +
                           static_cast<std::size_t>(splitmix64(rng) % body_range);
    (*bytes)[at] = static_cast<char>(
        static_cast<unsigned char>((*bytes)[at]) ^
        static_cast<unsigned char>(1u << (splitmix64(rng) % 8)));
    plan.faults.push_back(
        {member.offset, FaultKind::kGzipFrameCorrupt, member.target_uri});
  }
  if (config.truncate_tail && last_response != nullptr) {
    // Cut the file mid-member: the reader hits EOF inside the last
    // response's compressed frame → kTruncatedGzipMember.
    bytes->resize(static_cast<std::size_t>(last_response->offset) +
                  last_response->size / 2);
    plan.faults.push_back({last_response->offset, FaultKind::kTruncateTail,
                           last_response->target_uri});
  }
  return plan;
}

}  // namespace

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kVersionBitFlip:
      return "version-bit-flip";
    case FaultKind::kHeaderGarbage:
      return "header-garbage";
    case FaultKind::kLengthRewrite:
      return "length-rewrite";
    case FaultKind::kTruncateTail:
      return "truncate-tail";
    case FaultKind::kGzipFrameCorrupt:
      return "gzip-frame-corrupt";
  }
  return "unknown";
}

FaultPlan inject_faults(std::string* warc_bytes,
                        const FaultInjectConfig& config) {
  if (gzip::has_gzip_magic(*warc_bytes)) {
    return inject_gzip_faults(warc_bytes, config);
  }
  const std::vector<RecordSpan> records = scan_records(*warc_bytes);
  FaultPlan plan;
  std::uint64_t rng = config.seed;
  // Length-preserving kinds only, in rotation by RNG draw; kTruncateTail
  // is opt-in because it destroys every record after the cut point.
  const RecordSpan* last_response = nullptr;
  for (const RecordSpan& record : records) {
    if (record.type != "response") continue;
    last_response = &record;
  }
  for (const RecordSpan& record : records) {
    if (record.type != "response") continue;
    ++plan.response_records;
    // The tail-truncation target is excluded from random selection so the
    // plan never double-counts one record.
    if (config.truncate_tail && &record == last_response) continue;
    if (uniform01(rng) >= config.rate) continue;
    static constexpr FaultKind kInPlaceKinds[] = {
        FaultKind::kVersionBitFlip,
        FaultKind::kHeaderGarbage,
        FaultKind::kLengthRewrite,
    };
    const FaultKind kind = kInPlaceKinds[splitmix64(rng) % 3];
    apply_fault(warc_bytes, record, kind);
    plan.faults.push_back({record.offset, kind, record.target_uri});
  }
  if (config.truncate_tail && last_response != nullptr &&
      last_response->payload_size >= 2) {
    apply_fault(warc_bytes, *last_response, FaultKind::kTruncateTail);
    plan.faults.push_back({last_response->offset, FaultKind::kTruncateTail,
                           last_response->target_uri});
  }
  return plan;
}

}  // namespace hv::archive
